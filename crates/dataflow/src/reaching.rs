//! Reaching definitions and the data-dependence edges derived from them.

use crate::BitSet;
use jumpslice_cfg::Cfg;
use jumpslice_graph::NodeId;
use jumpslice_lang::{Name, Program, StmtId};
use std::collections::HashMap;

/// Dense numbering of the variables a program defines or uses.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    vars: Vec<Name>,
    index: HashMap<Name, usize>,
}

impl VarTable {
    /// Collects every variable defined or used anywhere in `prog`.
    pub fn of(prog: &Program) -> VarTable {
        let mut t = VarTable::default();
        for s in prog.stmt_ids() {
            if let Some(d) = prog.defs(s) {
                t.add(d);
            }
            for u in prog.uses(s) {
                t.add(u);
            }
        }
        t
    }

    fn add(&mut self, n: Name) {
        if !self.index.contains_key(&n) {
            self.index.insert(n, self.vars.len());
            self.vars.push(n);
        }
    }

    /// Number of distinct variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the program mentions no variables at all.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Rebuilds a table from a dense variable list (index `i` maps back to
    /// `vars[i]`) — the snapshot-restore constructor. Duplicates keep their
    /// first index, matching [`VarTable::of`]'s discovery order semantics.
    pub fn from_vars(vars: Vec<Name>) -> VarTable {
        let mut t = VarTable::default();
        for v in vars {
            t.add(v);
        }
        t
    }

    /// Dense index of a variable.
    pub fn index_of(&self, n: Name) -> Option<usize> {
        self.index.get(&n).copied()
    }

    /// Variable at a dense index.
    pub fn var(&self, i: usize) -> Name {
        self.vars[i]
    }
}

/// The classic forward may-analysis: which definition sites reach each node.
///
/// Definition sites are the statements with a def (`x = e;`, `read(x);`),
/// numbered densely.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    /// Definition sites, in discovery order.
    def_sites: Vec<StmtId>,
    /// IN set per CFG node, over def-site indices.
    in_sets: Vec<BitSet>,
    vars: VarTable,
}

/// The dense def-site numbering plus per-node gen/kill sets — the static
/// part of the reaching-definitions problem, shared by the cold solve and
/// the seeded re-solve.
struct GenKill {
    vars: VarTable,
    def_sites: Vec<StmtId>,
    site_of_stmt: Vec<Option<usize>>,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl GenKill {
    fn of(prog: &Program, cfg: &Cfg) -> GenKill {
        let vars = VarTable::of(prog);
        let mut def_sites = Vec::new();
        let mut site_of_stmt: Vec<Option<usize>> = vec![None; prog.len()];
        let mut sites_of_var: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
        for s in prog.stmt_ids() {
            if let Some(v) = prog.defs(s) {
                let idx = def_sites.len();
                def_sites.push(s);
                site_of_stmt[s.index()] = Some(idx);
                sites_of_var[vars.index_of(v).expect("collected")].push(idx);
            }
        }

        let n = cfg.graph().len();
        let nsites = def_sites.len();
        let mut gen = vec![BitSet::new(nsites); n];
        let mut kill = vec![BitSet::new(nsites); n];
        for s in prog.stmt_ids() {
            if let Some(idx) = site_of_stmt[s.index()] {
                let node = cfg.node(s);
                gen[node.index()].insert(idx);
                let v = prog.defs(s).expect("site has def");
                for &other in &sites_of_var[vars.index_of(v).expect("collected")] {
                    if other != idx {
                        kill[node.index()].insert(other);
                    }
                }
            }
        }
        GenKill {
            vars,
            def_sites,
            site_of_stmt,
            gen,
            kill,
        }
    }
}

impl ReachingDefs {
    /// Runs the fixpoint on `prog`'s flowgraph.
    pub fn compute(prog: &Program, cfg: &Cfg) -> ReachingDefs {
        let gk = GenKill::of(prog, cfg);
        let in_sets = vec![BitSet::new(gk.def_sites.len()); cfg.graph().len()];
        Self::solve(cfg, gk, in_sets, "reaching.fixpoint_passes")
    }

    /// Re-solves the fixpoint for an edited program, warm-started from the
    /// previous solution. See [`ReachingDefs::compute_seeded_tracked`] for
    /// the parameters; this variant discards the change tracking.
    pub fn compute_seeded(
        prog: &Program,
        cfg: &Cfg,
        old_cfg: &Cfg,
        old: &ReachingDefs,
        fwd: &[Option<StmtId>],
        dirty_vars: &[Name],
        dirty_from: Option<NodeId>,
    ) -> ReachingDefs {
        Self::compute_seeded_tracked(prog, cfg, old_cfg, old, fwd, dirty_vars, dirty_from).0
    }

    /// Re-solves the fixpoint for an edited program, warm-started from the
    /// previous solution, and reports which nodes' IN sets ended up
    /// different from the translated seed.
    ///
    /// `fwd` maps each old-arena statement index to its surviving id in
    /// `prog` (`None` for deleted statements). `dirty_vars` are the
    /// variables (in `prog`'s interner) that gained a definition in the
    /// edit; `dirty_from` is the flowgraph node of that new definition
    /// (`None` drops dirty bits everywhere).
    ///
    /// Soundness: the seed must sit at or below the new least fixpoint so
    /// monotone iteration converges to it exactly. Translating the old
    /// solution is below the new one for every bit whose definition variable
    /// is *clean*: the edit only splices nodes into or out of paths and
    /// removes no kills of clean variables. A *deleted* definition needs no
    /// dirty variable at all — removing a definition removes kills, so every
    /// surviving definition's reach can only grow and the translated bits
    /// stay below the fixpoint (the deleted site itself has no forward
    /// image and drops out of the translation). An *inserted* definition
    /// kills other definitions of its variable, but only along paths that
    /// pass through it — so bits owned by dirty variables are cleared only
    /// at nodes reachable from `dirty_from`, and the first iteration
    /// regenerates whatever genuinely still reaches. Statements with no old
    /// counterpart start at bottom, which is trivially safe.
    ///
    /// The returned flags are indexed by `cfg` node: `true` means the
    /// node's fixpoint IN set differs from its seed, or the node had no old
    /// counterpart to seed from. Callers patching per-statement facts (see
    /// [`DataDeps::patch_seeded`]) may keep facts at unflagged nodes.
    pub fn compute_seeded_tracked(
        prog: &Program,
        cfg: &Cfg,
        old_cfg: &Cfg,
        old: &ReachingDefs,
        fwd: &[Option<StmtId>],
        dirty_vars: &[Name],
        dirty_from: Option<NodeId>,
    ) -> (ReachingDefs, Vec<bool>) {
        let gk = GenKill::of(prog, cfg);
        let nsites = gk.def_sites.len();
        let n = cfg.graph().len();
        let mut in_sets = vec![BitSet::new(nsites); n];

        // Translate old site indices to new ones across the statement map;
        // sites of deleted statements drop out here.
        let mut site_map: Vec<Option<usize>> = vec![None; old.def_sites.len()];
        let mut dirty_old_site = vec![false; old.def_sites.len()];
        for (old_idx, &old_stmt) in old.def_sites.iter().enumerate() {
            let Some(new_stmt) = fwd.get(old_stmt.index()).copied().flatten() else {
                continue;
            };
            let Some(new_idx) = gk.site_of_stmt[new_stmt.index()] else {
                continue;
            };
            site_map[old_idx] = Some(new_idx);
            let v = prog.defs(new_stmt).expect("def site maps to def site");
            dirty_old_site[old_idx] = dirty_vars.contains(&v);
        }
        let affected: Option<Vec<bool>> =
            dirty_from.map(|v| jumpslice_graph::reachable_from(cfg.graph(), v));
        let in_region = |node: NodeId| affected.as_ref().is_none_or(|a| a[node.index()]);

        let mut seeded_bits = 0u64;
        let masked_identity = site_map
            .iter()
            .enumerate()
            .all(|(i, m)| m.is_none() || *m == Some(i));
        if masked_identity {
            // Every surviving site keeps its index (edits at the end of the
            // program), so the translation is a word-parallel masked union
            // instead of a per-bit loop.
            let old_nsites = old.def_sites.len();
            let mut clean = BitSet::new(old_nsites);
            let mut safe = BitSet::new(old_nsites);
            for (i, m) in site_map.iter().enumerate() {
                if m.is_some() {
                    clean.insert(i);
                    if !dirty_old_site[i] {
                        safe.insert(i);
                    }
                }
            }
            for (old_stmt_idx, &new_stmt) in fwd.iter().enumerate() {
                let Some(new_stmt) = new_stmt else { continue };
                let old_node = old_cfg.node(StmtId::from_index(old_stmt_idx));
                let new_node = cfg.node(new_stmt);
                let mask = if in_region(new_node) { &safe } else { &clean };
                in_sets[new_node.index()].union_masked(&old.in_sets[old_node.index()], mask);
            }
            seeded_bits = in_sets.iter().map(|s| s.len() as u64).sum();
        } else {
            for (old_stmt_idx, &new_stmt) in fwd.iter().enumerate() {
                let Some(new_stmt) = new_stmt else { continue };
                let old_node = old_cfg.node(StmtId::from_index(old_stmt_idx));
                let new_node = cfg.node(new_stmt);
                let dirty_here = in_region(new_node);
                let target = &mut in_sets[new_node.index()];
                for old_bit in old.in_sets[old_node.index()].iter() {
                    if dirty_here && dirty_old_site[old_bit] {
                        continue;
                    }
                    if let Some(new_bit) = site_map[old_bit] {
                        target.insert(new_bit);
                        seeded_bits += 1;
                    }
                }
            }
        }

        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "reaching.seeded_bits",
            value: seeded_bits,
        });
        let (rd, mut in_changed) = Self::solve_tracked(cfg, gk, in_sets, "reaching.seeded_passes");
        let mut has_old = vec![false; n];
        for &new_stmt in fwd.iter().flatten() {
            has_old[cfg.node(new_stmt).index()] = true;
        }
        for (i, flag) in in_changed.iter_mut().enumerate() {
            *flag |= !has_old[i];
        }
        (rd, in_changed)
    }

    /// Chaotic iteration to the least fixpoint from `in_sets` (which must
    /// be at or below it). Out-sets are derived from the seed via the
    /// transfer function, preserving the invariant.
    fn solve(cfg: &Cfg, gk: GenKill, in_sets: Vec<BitSet>, counter: &'static str) -> ReachingDefs {
        Self::solve_tracked(cfg, gk, in_sets, counter).0
    }

    /// [`ReachingDefs::solve`], additionally reporting per node whether its
    /// IN set at the fixpoint differs from the seed it started from.
    fn solve_tracked(
        cfg: &Cfg,
        gk: GenKill,
        mut in_sets: Vec<BitSet>,
        counter: &'static str,
    ) -> (ReachingDefs, Vec<bool>) {
        let GenKill {
            vars,
            def_sites,
            gen,
            kill,
            ..
        } = gk;
        // Worklist in reverse postorder from entry for fast convergence.
        // Nodes unreachable from entry are excluded, and must keep empty
        // sets — deriving `out = gen` for them would let dead definitions
        // leak into reachable fall-through successors.
        let order = jumpslice_graph::reverse_postorder(cfg.graph(), cfg.entry());
        let n = cfg.graph().len();
        let nsites = def_sites.len();
        let mut live_node = vec![false; n];
        for &node in &order {
            live_node[node.index()] = true;
        }
        let mut in_changed = vec![false; n];
        let mut out_sets = Vec::with_capacity(n);
        for i in 0..n {
            if !live_node[i] {
                if !in_sets[i].is_empty() {
                    in_changed[i] = true;
                }
                in_sets[i].clear();
                out_sets.push(BitSet::new(nsites));
                continue;
            }
            let mut out = in_sets[i].clone();
            out.subtract(&kill[i]);
            out.union_with(&gen[i]);
            out_sets.push(out);
        }
        let mut changed = true;
        let mut passes = 0u64;
        while changed {
            changed = false;
            passes += 1;
            for &node in &order {
                let i = node.index();
                let mut new_in = BitSet::new(nsites);
                for &p in cfg.graph().preds(node) {
                    new_in.union_with(&out_sets[p.index()]);
                }
                let mut new_out = new_in.clone();
                new_out.subtract(&kill[i]);
                new_out.union_with(&gen[i]);
                if new_in != in_sets[i] || new_out != out_sets[i] {
                    if new_in != in_sets[i] {
                        in_changed[i] = true;
                    }
                    in_sets[i] = new_in;
                    out_sets[i] = new_out;
                    changed = true;
                }
            }
        }

        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: counter,
            value: passes,
        });
        (
            ReachingDefs {
                def_sites,
                in_sets,
                vars,
            },
            in_changed,
        )
    }

    /// The variable table used by this analysis.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// The definition sites, in discovery order — bit `i` of every IN set
    /// refers to `def_sites()[i]`.
    pub fn def_sites(&self) -> &[StmtId] {
        &self.def_sites
    }

    /// The IN set of every flowgraph node, indexed by node.
    pub fn in_sets(&self) -> &[BitSet] {
        &self.in_sets
    }

    /// Reassembles a solution from its raw parts — the snapshot-restore
    /// constructor, inverse of [`ReachingDefs::def_sites`] /
    /// [`ReachingDefs::in_sets`] / [`ReachingDefs::vars`]. The caller is
    /// responsible for the parts describing the same program the solution
    /// was computed for; slicing through a mismatched solution is undefined
    /// (but memory-safe — all downstream access is bounds-checked).
    pub fn from_parts(
        def_sites: Vec<StmtId>,
        in_sets: Vec<BitSet>,
        vars: VarTable,
    ) -> ReachingDefs {
        ReachingDefs {
            def_sites,
            in_sets,
            vars,
        }
    }

    /// The definition statements reaching the *entry* of `node`.
    pub fn reaching_in(&self, node: NodeId) -> impl Iterator<Item = StmtId> + '_ {
        self.in_sets[node.index()].iter().map(|i| self.def_sites[i])
    }
}

/// Data-dependence edges: `u` depends on `d` when a definition at `d`
/// reaches a use of the same variable at `u`.
#[derive(Clone, Debug)]
pub struct DataDeps {
    /// For each statement, the definition statements it depends on (sorted).
    deps: Vec<Vec<StmtId>>,
    /// Reverse direction: statements depending on each statement (sorted).
    dependents: Vec<Vec<StmtId>>,
}

impl DataDeps {
    /// Computes data dependence from reaching definitions over the
    /// (unaugmented) flowgraph — the paper is explicit that data dependence
    /// always comes from the standard flowgraph.
    pub fn compute(prog: &Program, cfg: &Cfg) -> DataDeps {
        let rd = ReachingDefs::compute(prog, cfg);
        Self::from_reaching(prog, cfg, &rd)
    }

    /// Derives the edges from a precomputed [`ReachingDefs`].
    pub fn from_reaching(prog: &Program, cfg: &Cfg, rd: &ReachingDefs) -> DataDeps {
        let n = prog.len();
        let mut deps = vec![Vec::new(); n];
        let mut dependents = vec![Vec::new(); n];
        for u in prog.stmt_ids() {
            let used = prog.uses(u);
            if used.is_empty() {
                continue;
            }
            let node = cfg.node(u);
            for d in rd.reaching_in(node) {
                let v = prog.defs(d).expect("def site");
                if used.contains(&v) {
                    deps[u.index()].push(d);
                    dependents[d.index()].push(u);
                }
            }
        }
        for v in deps.iter_mut().chain(dependents.iter_mut()) {
            v.sort();
            v.dedup();
        }
        DataDeps { deps, dependents }
    }

    /// The forward half of [`DataDeps::from_reaching`] restricted to
    /// statements with index in `lo..hi` (lists sorted and deduplicated,
    /// indexed relative to `lo`). The parallel cold-path warm fans the
    /// ranges of `0..prog.len()` across threads and reassembles with
    /// [`DataDeps::from_deps`]; because each statement's list depends only
    /// on that statement's uses and IN-set, the concatenation is exactly
    /// `from_reaching`'s forward half regardless of the range split.
    pub fn deps_of_range(
        prog: &Program,
        cfg: &Cfg,
        rd: &ReachingDefs,
        lo: usize,
        hi: usize,
    ) -> Vec<Vec<StmtId>> {
        let mut deps = vec![Vec::new(); hi - lo];
        for i in lo..hi {
            let u = StmtId::from_index(i);
            let used = prog.uses(u);
            if used.is_empty() {
                continue;
            }
            let node = cfg.node(u);
            let list = &mut deps[i - lo];
            for d in rd.reaching_in(node) {
                let v = prog.defs(d).expect("def site");
                if used.contains(&v) {
                    list.push(d);
                }
            }
            list.sort();
            list.dedup();
        }
        deps
    }

    /// Rebuilds the edge set from the forward direction only, deriving the
    /// inverse index — the snapshot-restore constructor. `deps[i]` lists
    /// the definitions statement `i` depends on; lists are sorted and
    /// deduplicated here, so wire forms need not be trusted. Our own wire
    /// forms always arrive strictly sorted, so the sort is guarded by a
    /// single ordering scan — restore pays for it only on hostile bytes.
    pub fn from_deps(mut deps: Vec<Vec<StmtId>>) -> DataDeps {
        let n = deps.len();
        let mut counts = vec![0usize; n];
        for v in deps.iter_mut() {
            if !v.windows(2).all(|w| w[0] < w[1]) {
                v.sort();
                v.dedup();
            }
            for d in v.iter() {
                counts[d.index()] += 1;
            }
        }
        // Filling in ascending `u` over deduplicated forward lists leaves
        // every reverse list strictly sorted — no post-pass needed.
        let mut dependents: Vec<Vec<StmtId>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (u, ds) in deps.iter().enumerate() {
            for &d in ds {
                dependents[d.index()].push(StmtId::from_index(u));
            }
        }
        DataDeps { deps, dependents }
    }

    /// The definitions statement `s` depends on.
    pub fn deps(&self, s: StmtId) -> &[StmtId] {
        &self.deps[s.index()]
    }

    /// The statements that depend on `s`.
    pub fn dependents(&self, s: StmtId) -> &[StmtId] {
        &self.dependents[s.index()]
    }

    /// All edges as `(def, use)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (StmtId, StmtId)> + '_ {
        self.deps
            .iter()
            .enumerate()
            .flat_map(|(u, ds)| ds.iter().map(move |&d| (d, StmtId::from_index(u))))
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Rebuilds the edge set for an edited program from these (old) edges
    /// plus a warm reaching solution, recomputing incoming edges only for
    /// statements whose reaching facts could have changed. Returns the new
    /// edges and the number of statements actually repointed.
    ///
    /// `fwd`, `in_changed`, `dirty_vars`, and `dirty_from` must be the
    /// statement map, the flags reported by
    /// [`ReachingDefs::compute_seeded_tracked`], and the same dirty
    /// variables and region origin that call was given.
    ///
    /// A surviving statement keeps its translated old edges when its node
    /// is unflagged, it uses no dirty variable (checked only at nodes
    /// reachable from `dirty_from` — elsewhere the seed kept every dirty
    /// bit), and none of its old deps was deleted. Those three conditions
    /// cover every way an edge can appear or vanish: a new reaching
    /// definition flips the node's IN set (flagged), a definition of a
    /// dirty variable may have been silently dropped from the seed (dirty
    /// use in region), and a deleted definition leaves its dependents' IN
    /// sets untouched when nothing replaces it (deleted dep).
    #[allow(clippy::too_many_arguments)]
    pub fn patch_seeded(
        &self,
        prog: &Program,
        cfg: &Cfg,
        rd: &ReachingDefs,
        fwd: &[Option<StmtId>],
        in_changed: &[bool],
        dirty_vars: &[Name],
        dirty_from: Option<NodeId>,
    ) -> (DataDeps, usize) {
        let n = prog.len();
        let affected: Option<Vec<bool>> =
            dirty_from.map(|v| jumpslice_graph::reachable_from(cfg.graph(), v));
        let mut deps: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        let mut carried = vec![false; n];
        'old: for (old_idx, &new_id) in fwd.iter().enumerate() {
            let Some(u) = new_id else { continue };
            let node = cfg.node(u);
            let dirty_here = affected.as_ref().is_none_or(|a| a[node.index()]);
            if in_changed[node.index()]
                || (dirty_here && prog.uses(u).iter().any(|v| dirty_vars.contains(v)))
            {
                continue;
            }
            let old_deps = &self.deps[StmtId::from_index(old_idx).index()];
            let mut translated = Vec::with_capacity(old_deps.len());
            for &d in old_deps {
                match fwd.get(d.index()).copied().flatten() {
                    Some(nd) => translated.push(nd),
                    None => continue 'old, // a dep was deleted: repoint
                }
            }
            translated.sort();
            translated.dedup();
            deps[u.index()] = translated;
            carried[u.index()] = true;
        }

        let mut repointed = 0;
        for u in prog.stmt_ids() {
            if carried[u.index()] {
                continue;
            }
            let used = prog.uses(u);
            if used.is_empty() {
                continue;
            }
            repointed += 1;
            let mut fresh = Vec::new();
            for d in rd.reaching_in(cfg.node(u)) {
                let v = prog.defs(d).expect("def site");
                if used.contains(&v) {
                    fresh.push(d);
                }
            }
            fresh.sort();
            fresh.dedup();
            deps[u.index()] = fresh;
        }

        let mut dependents: Vec<Vec<StmtId>> = vec![Vec::new(); n];
        for (u, ds) in deps.iter().enumerate() {
            for &d in ds {
                dependents[d.index()].push(StmtId::from_index(u));
            }
        }
        for v in dependents.iter_mut() {
            v.sort();
            v.dedup();
        }
        (DataDeps { deps, dependents }, repointed)
    }

    /// Recomputes the *incoming* edges of `u` from `rd` and replaces the
    /// stored ones, fixing the inverse index. This is the data-dependence
    /// patch for an edit that changes only the uses of one statement (an
    /// expression replacement): every other statement's edges are untouched.
    /// Returns the number of edges now pointing into `u`.
    pub fn repoint_uses(
        &mut self,
        prog: &Program,
        cfg: &Cfg,
        rd: &ReachingDefs,
        u: StmtId,
    ) -> usize {
        for &d in &self.deps[u.index()] {
            self.dependents[d.index()].retain(|&x| x != u);
        }
        let used = prog.uses(u);
        let mut new_deps = Vec::new();
        if !used.is_empty() {
            for d in rd.reaching_in(cfg.node(u)) {
                let v = prog.defs(d).expect("def site");
                if used.contains(&v) {
                    new_deps.push(d);
                }
            }
        }
        new_deps.sort();
        new_deps.dedup();
        for &d in &new_deps {
            let inv = &mut self.dependents[d.index()];
            inv.push(u);
            inv.sort();
            inv.dedup();
        }
        let n = new_deps.len();
        self.deps[u.index()] = new_deps;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    fn deps_of(src: &str, line: usize) -> Vec<usize> {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let dd = DataDeps::compute(&p, &cfg);
        dd.deps(p.at_line(line))
            .iter()
            .map(|&s| p.line_of(s))
            .collect()
    }

    #[test]
    fn straight_line_chain() {
        assert_eq!(deps_of("x = 1; y = x; write(y);", 3), vec![2]);
        assert_eq!(deps_of("x = 1; y = x; write(y);", 2), vec![1]);
    }

    #[test]
    fn redefinition_kills() {
        // write(x) sees only the second definition.
        assert_eq!(deps_of("x = 1; x = 2; write(x);", 3), vec![2]);
    }

    #[test]
    fn both_branches_reach() {
        let src = "read(c); if (c) { x = 1; } else { x = 2; } write(x);";
        assert_eq!(deps_of(src, 5), vec![3, 4]);
    }

    #[test]
    fn loop_carried_dependence() {
        let src = "x = 0; while (x < 3) { x = x + 1; } write(x);";
        // The loop body's use of x sees the initial def and itself.
        assert_eq!(deps_of(src, 3), vec![1, 3]);
        assert_eq!(deps_of(src, 4), vec![1, 3]);
    }

    #[test]
    fn read_redefines() {
        let src = "x = 1; read(x); write(x);";
        assert_eq!(deps_of(src, 3), vec![2]);
    }

    #[test]
    fn predicate_uses_count() {
        let src = "read(x); if (x > 0) { y = 1; } write(y);";
        assert_eq!(deps_of(src, 2), vec![1]);
    }

    #[test]
    fn paper_figure_2b_data_dependence() {
        // Figure 1-a / 2-b: write(positives) on line 12 is data dependent on
        // lines 2 and 7.
        let src = "sum = 0;
                   positives = 0;
                   while (!eof()) {
                     read(x);
                     if (x <= 0)
                       sum = sum + f1(x);
                     else {
                       positives = positives + 1;
                       if (x % 2 == 0)
                         sum = sum + f2(x);
                       else
                         sum = sum + f3(x);
                     }
                   }
                   write(sum);
                   write(positives);";
        assert_eq!(deps_of(src, 12), vec![2, 7]);
        // And positives = positives + 1 (line 7) sees lines 2 and 7.
        assert_eq!(deps_of(src, 7), vec![2, 7]);
        // write(sum) sees every sum definition.
        assert_eq!(deps_of(src, 11), vec![1, 6, 9, 10]);
    }

    #[test]
    fn goto_paths_carry_defs() {
        let src = "x = 1; goto L; x = 2; L: write(x);";
        // x = 2 is unreachable: only the first def reaches the write.
        assert_eq!(deps_of(src, 4), vec![1]);
    }

    #[test]
    fn dependents_is_inverse() {
        let p = parse("x = 1; y = x; z = x + y;").unwrap();
        let cfg = Cfg::build(&p);
        let dd = DataDeps::compute(&p, &cfg);
        let x = p.at_line(1);
        let dep_lines: Vec<usize> = dd.dependents(x).iter().map(|&s| p.line_of(s)).collect();
        assert_eq!(dep_lines, vec![2, 3]);
        for (d, u) in dd.edges() {
            assert!(dd.deps(u).contains(&d));
            assert!(dd.dependents(d).contains(&u));
        }
        assert_eq!(dd.num_edges(), 3);
    }

    #[test]
    fn var_table_counts() {
        let p = parse("x = 1; y = x + z;").unwrap();
        let vt = VarTable::of(&p);
        assert_eq!(vt.len(), 3); // x, y, z
        assert!(!vt.is_empty());
        let x = p.name("x").unwrap();
        assert_eq!(vt.var(vt.index_of(x).unwrap()), x);
    }

    #[test]
    fn seeded_identity_map_matches_cold_solve() {
        let src = "x = 0; i = 0;
                   while (i < 9) {
                     if (i % 2 == 0) { x = x + i; } else { read(x); }
                     i = i + 1;
                   }
                   write(x); write(i);";
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let cold = ReachingDefs::compute(&p, &cfg);
        let fwd: Vec<Option<StmtId>> = p.stmt_ids().map(Some).collect();
        let (warm, in_changed) =
            ReachingDefs::compute_seeded_tracked(&p, &cfg, &cfg, &cold, &fwd, &[], None);
        // An identity edit seeds the exact fixpoint: no statement node may
        // be reported as changed.
        for s in p.stmt_ids() {
            assert!(!in_changed[cfg.node(s).index()], "{s:?} spuriously dirty");
        }
        for node in (0..cfg.graph().len()).map(jumpslice_graph::NodeId::new) {
            let a: Vec<StmtId> = cold.reaching_in(node).collect();
            let b: Vec<StmtId> = warm.reaching_in(node).collect();
            assert_eq!(a, b, "node {node:?}");
        }
    }

    #[test]
    fn seeded_solve_after_simulated_delete() {
        // Delete the killing redefinition `x = 2`; the surviving def must
        // reach the write even though the old solution said it was killed.
        let old = parse("x = 1; x = 2; write(x);").unwrap();
        let new = parse("x = 1; write(x);").unwrap();
        let old_cfg = Cfg::build(&old);
        let new_cfg = Cfg::build(&new);
        let old_rd = ReachingDefs::compute(&old, &old_cfg);
        // A deletion needs no dirty variables: the deleted site drops out of
        // the translation, and surviving reaches only grow.
        let fwd = vec![Some(new.at_line(1)), None, Some(new.at_line(2))];
        let warm = ReachingDefs::compute_seeded(&new, &new_cfg, &old_cfg, &old_rd, &fwd, &[], None);
        let dd = DataDeps::from_reaching(&new, &new_cfg, &warm);
        let lines: Vec<usize> = dd
            .deps(new.at_line(2))
            .iter()
            .map(|&s| new.line_of(s))
            .collect();
        assert_eq!(lines, vec![1]);
    }

    /// Simulates the session's seeded path end to end — tracked re-solve
    /// plus data-dependence patch — and checks the patch against a cold
    /// rebuild, for both a deletion and an insertion.
    #[test]
    fn patch_seeded_matches_cold_rebuild() {
        // Delete the killing redefinition `x = 2` (line 2 of `old`).
        let old = parse("x = 1; x = 2; y = 3; write(x); write(y);").unwrap();
        let new = parse("x = 1; y = 3; write(x); write(y);").unwrap();
        let old_cfg = Cfg::build(&old);
        let new_cfg = Cfg::build(&new);
        let old_rd = ReachingDefs::compute(&old, &old_cfg);
        let old_dd = DataDeps::from_reaching(&old, &old_cfg, &old_rd);
        let fwd = vec![
            Some(new.at_line(1)),
            None,
            Some(new.at_line(2)),
            Some(new.at_line(3)),
            Some(new.at_line(4)),
        ];
        let (rd, in_changed) = ReachingDefs::compute_seeded_tracked(
            &new,
            &new_cfg,
            &old_cfg,
            &old_rd,
            &fwd,
            &[],
            None,
        );
        let (patched, repointed) =
            old_dd.patch_seeded(&new, &new_cfg, &rd, &fwd, &in_changed, &[], None);
        let fresh = DataDeps::from_reaching(&new, &new_cfg, &rd);
        for s in new.stmt_ids() {
            assert_eq!(patched.deps(s), fresh.deps(s), "deps of {s:?}");
            assert_eq!(
                patched.dependents(s),
                fresh.dependents(s),
                "dependents of {s:?}"
            );
        }
        // write(x) lost its dep on the deleted def and must repoint;
        // write(y) is untouched and must be carried.
        assert!(repointed >= 1, "the deleted def's dependent repoints");
        assert!(repointed < 4, "clean statements are carried, not repointed");

        // Insert `x = 9` between the two writes: kills reach only forward.
        let before = parse("x = 1; write(x); write(x);").unwrap();
        let after = parse("x = 1; write(x); x = 9; write(x);").unwrap();
        let bcfg = Cfg::build(&before);
        let acfg = Cfg::build(&after);
        let brd = ReachingDefs::compute(&before, &bcfg);
        let bdd = DataDeps::from_reaching(&before, &bcfg, &brd);
        let fwd = vec![
            Some(after.at_line(1)),
            Some(after.at_line(2)),
            Some(after.at_line(4)),
        ];
        let dirty = vec![after.name("x").unwrap()];
        let from = Some(acfg.node(after.at_line(3)));
        let (rd, in_changed) =
            ReachingDefs::compute_seeded_tracked(&after, &acfg, &bcfg, &brd, &fwd, &dirty, from);
        let (patched, repointed) =
            bdd.patch_seeded(&after, &acfg, &rd, &fwd, &in_changed, &dirty, from);
        let fresh = DataDeps::from_reaching(&after, &acfg, &rd);
        for s in after.stmt_ids() {
            assert_eq!(patched.deps(s), fresh.deps(s), "deps of {s:?}");
            assert_eq!(
                patched.dependents(s),
                fresh.dependents(s),
                "dependents of {s:?}"
            );
        }
        // The first write(x) sits before the insertion point — outside the
        // dirty region — so despite using the dirty variable it is carried;
        // only the second write (whose IN set the new def flipped) repoints.
        assert_eq!(repointed, 1, "exactly the downstream use repoints");
        assert_eq!(
            fresh.deps(after.at_line(2)),
            &[after.at_line(1)],
            "sanity: first write still sees the original def"
        );
        assert_eq!(
            fresh.deps(after.at_line(4)),
            &[after.at_line(3)],
            "sanity: second write sees only the inserted def"
        );
    }

    #[test]
    fn repoint_uses_patches_both_directions() {
        // Rewriting `write(y)` to read x instead of y.
        let before = parse("x = 1; y = 2; write(y);").unwrap();
        let after = parse("x = 1; y = 2; write(x);").unwrap();
        let cfg = Cfg::build(&after);
        let rd = ReachingDefs::compute(&after, &cfg);
        // Start from the stale edges of the *old* expression.
        let mut dd = DataDeps::compute(&before, &Cfg::build(&before));
        let w = after.at_line(3);
        let n = dd.repoint_uses(&after, &cfg, &rd, w);
        assert_eq!(n, 1);
        let fresh = DataDeps::from_reaching(&after, &cfg, &rd);
        for s in after.stmt_ids() {
            assert_eq!(dd.deps(s), fresh.deps(s), "deps of {s:?}");
            assert_eq!(dd.dependents(s), fresh.dependents(s), "dependents of {s:?}");
        }
    }

    #[test]
    fn raw_part_constructors_round_trip() {
        let p = parse("x = 1; y = x; while (y < 9) { y = y + x; } write(y);").unwrap();
        let cfg = Cfg::build(&p);
        let rd = ReachingDefs::compute(&p, &cfg);
        let rebuilt = ReachingDefs::from_parts(
            rd.def_sites().to_vec(),
            rd.in_sets().to_vec(),
            VarTable::from_vars((0..rd.vars().len()).map(|i| rd.vars().var(i)).collect()),
        );
        for node in (0..cfg.graph().len()).map(jumpslice_graph::NodeId::new) {
            assert_eq!(
                rd.reaching_in(node).collect::<Vec<_>>(),
                rebuilt.reaching_in(node).collect::<Vec<_>>(),
                "node {node:?}"
            );
        }
        assert_eq!(rd.vars().len(), rebuilt.vars().len());

        let dd = DataDeps::from_reaching(&p, &cfg, &rd);
        let fwd_only: Vec<Vec<StmtId>> = p.stmt_ids().map(|s| dd.deps(s).to_vec()).collect();
        let back = DataDeps::from_deps(fwd_only);
        for s in p.stmt_ids() {
            assert_eq!(dd.deps(s), back.deps(s), "deps of {s:?}");
            assert_eq!(dd.dependents(s), back.dependents(s), "dependents of {s:?}");
        }
    }

    #[test]
    fn switch_fallthrough_reaches() {
        let src = "read(c); switch (c) { case 1: x = 1; case 2: y = x; break; } write(y);";
        // y = x (line 4) must see x = 1 via fall-through.
        assert_eq!(deps_of(src, 4), vec![3]);
    }
}
