//! A dense statement set: the slicing engine's working currency.
//!
//! Statement ids are dense `0..program.len()` arena indices, so a slice —
//! fundamentally "a set of statements of one program" — is a bitset, not a
//! search tree. Membership is one shift-and-mask, union is a word-wise OR,
//! and iteration is still sorted (ascending id order == lexical order),
//! which keeps `Slice::lines`/`render` and every figure test byte-stable
//! while removing the `BTreeSet` log-factor and pointer chasing from all
//! the slicers' inner loops.

use crate::BitSet;
use jumpslice_lang::StmtId;

/// A set of [`StmtId`]s backed by a dense [`BitSet`].
///
/// Capacity grows automatically on insert, and equality/ordering are
/// content-based regardless of capacity, so sets sized for different
/// programs (or grown at different times) still compare as values.
///
/// # Examples
///
/// ```
/// use jumpslice_dataflow::StmtSet;
/// use jumpslice_lang::StmtId;
/// let mut s = StmtSet::with_capacity(10);
/// s.insert(StmtId::from_index(3));
/// s.insert(StmtId::from_index(7));
/// assert!(s.contains(StmtId::from_index(3)));
/// assert_eq!(s.iter().map(|id| id.index()).collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, Debug)]
pub struct StmtSet {
    bits: BitSet,
}

impl Default for StmtSet {
    fn default() -> StmtSet {
        StmtSet::new()
    }
}

impl StmtSet {
    /// Creates an empty set; storage is allocated on first insert.
    pub fn new() -> StmtSet {
        StmtSet::with_capacity(0)
    }

    /// Creates an empty set pre-sized for statements `0..capacity`
    /// (typically `program.len()`), avoiding growth in hot loops.
    pub fn with_capacity(capacity: usize) -> StmtSet {
        StmtSet {
            bits: BitSet::new(capacity),
        }
    }

    /// Inserts `s`; returns `true` if newly inserted. Grows as needed.
    pub fn insert(&mut self, s: StmtId) -> bool {
        let i = s.index();
        if i >= self.bits.capacity() {
            self.grow(i + 1);
        }
        self.bits.insert(i)
    }

    /// Removes `s`; returns `true` if it was present.
    pub fn remove(&mut self, s: StmtId) -> bool {
        if s.index() >= self.bits.capacity() {
            return false;
        }
        self.bits.remove(s.index())
    }

    /// Membership test (false for out-of-capacity ids; no growth).
    pub fn contains(&self, s: StmtId) -> bool {
        self.bits.contains(s.index())
    }

    /// Number of statements in the set.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Iterates statements in ascending id order (== lexical order).
    pub fn iter(&self) -> impl Iterator<Item = StmtId> + '_ {
        self.bits.iter().map(StmtId::from_index)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &StmtSet) -> bool {
        if other.bits.capacity() > self.bits.capacity() {
            self.grow(other.bits.capacity());
        }
        if other.bits.capacity() == self.bits.capacity() {
            return self.bits.union_with(&other.bits);
        }
        let mut changed = false;
        for v in other.bits.iter() {
            changed |= self.bits.insert(v);
        }
        changed
    }

    /// Whether the two sets share any statement — a word-parallel probe,
    /// not an element loop. Capacities may differ.
    pub fn intersects(&self, other: &StmtSet) -> bool {
        self.bits.intersects(&other.bits)
    }

    /// The backing 64-bit words (see [`BitSet::words`]): bit `b` of
    /// `words()[w]` is the statement with index `w * 64 + b`.
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &StmtSet) -> bool {
        self.iter().all(|s| other.contains(s))
    }

    /// The intersection of the two sets.
    pub fn intersection(&self, other: &StmtSet) -> StmtSet {
        let mut out = StmtSet::with_capacity(self.bits.capacity().min(other.bits.capacity()));
        for s in self.iter() {
            if other.contains(s) {
                out.insert(s);
            }
        }
        out
    }

    fn grow(&mut self, min_capacity: usize) {
        let mut bigger = BitSet::new(min_capacity.max(self.bits.capacity() * 2).max(64));
        for v in self.bits.iter() {
            bigger.insert(v);
        }
        self.bits = bigger;
    }
}

impl PartialEq for StmtSet {
    fn eq(&self, other: &StmtSet) -> bool {
        // Content equality irrespective of capacity.
        let mut a = self.bits.iter();
        let mut b = other.bits.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => continue,
                _ => return false,
            }
        }
    }
}

impl Eq for StmtSet {}

impl FromIterator<StmtId> for StmtSet {
    fn from_iter<I: IntoIterator<Item = StmtId>>(iter: I) -> StmtSet {
        let mut s = StmtSet::new();
        s.extend(iter);
        s
    }
}

impl Extend<StmtId> for StmtSet {
    fn extend<I: IntoIterator<Item = StmtId>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

impl<'a> IntoIterator for &'a StmtSet {
    type Item = StmtId;
    type IntoIter = Box<dyn Iterator<Item = StmtId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> StmtId {
        StmtId::from_index(i)
    }

    #[test]
    fn sorted_iteration_and_membership() {
        let mut s = StmtSet::with_capacity(4);
        for i in [9, 2, 130, 2, 64] {
            s.insert(id(i));
        }
        assert_eq!(
            s.iter().map(|x| x.index()).collect::<Vec<_>>(),
            vec![2, 9, 64, 130]
        );
        assert!(s.contains(id(64)));
        assert!(!s.contains(id(65)));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = StmtSet::with_capacity(1000);
        let mut b = StmtSet::new();
        for i in [1, 5, 900] {
            a.insert(id(i));
            b.insert(id(i));
        }
        assert_eq!(a, b);
        b.insert(id(2));
        assert_ne!(a, b);
    }

    #[test]
    fn union_grows() {
        let mut a = StmtSet::with_capacity(4);
        a.insert(id(1));
        let mut b = StmtSet::with_capacity(300);
        b.insert(id(256));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(id(256)) && a.contains(id(1)));
    }

    #[test]
    fn subset_and_intersection() {
        let a: StmtSet = [1, 2, 3].into_iter().map(id).collect();
        let b: StmtSet = [2, 3, 4, 5].into_iter().map(id).collect();
        assert!(!a.is_subset(&b));
        let i = a.intersection(&b);
        assert_eq!(i.iter().map(|x| x.index()).collect::<Vec<_>>(), vec![2, 3]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
    }

    #[test]
    fn intersects_across_capacities() {
        let mut a = StmtSet::with_capacity(1000);
        let mut b = StmtSet::new();
        assert!(!a.intersects(&b));
        a.insert(id(900));
        b.insert(id(7));
        assert!(!a.intersects(&b));
        a.insert(id(7));
        assert!(a.intersects(&b) && b.intersects(&a));
    }

    #[test]
    fn remove_out_of_capacity_is_noop() {
        let mut s = StmtSet::new();
        assert!(!s.remove(id(10)));
        s.insert(id(10));
        assert!(s.remove(id(10)));
        assert!(s.is_empty());
    }
}
