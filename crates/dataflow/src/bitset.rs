//! A fixed-capacity bitset for dataflow fixpoints.

/// A dense bitset over `0..capacity`.
///
/// # Examples
///
/// ```
/// use jumpslice_dataflow::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bitset index out of range");
        let (w, b) = (v / 64, v % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bitset index out of range");
        let (w, b) = (v / 64, v % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        self.words[v / 64] & (1 << (v % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Unions `other ∩ mask` into `self`, word-parallel. `other` and `mask`
    /// must share a capacity; it may differ from `self`'s, in which case
    /// every bit of `mask` must lie below `min(self.capacity,
    /// other.capacity)` — words past the shorter operand are ignored.
    pub fn union_masked(&mut self, other: &BitSet, mask: &BitSet) {
        debug_assert_eq!(other.capacity, mask.capacity);
        for ((a, b), m) in self.words.iter_mut().zip(&other.words).zip(&mask.words) {
            *a |= b & m;
        }
    }

    /// Removes every element of `other` from `self`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(129));
        assert!(!s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(3));
    }

    #[test]
    fn union_masked_filters_and_tolerates_capacity_mismatch() {
        // Wider source into a narrower target: the mask confines every
        // surviving bit to the shared range.
        let mut target = BitSet::new(70);
        let mut src = BitSet::new(130);
        let mut mask = BitSet::new(130);
        for v in [0, 3, 64, 69] {
            src.insert(v);
        }
        for v in [3, 64] {
            mask.insert(v);
        }
        target.union_masked(&src, &mask);
        assert_eq!(target.iter().collect::<Vec<_>>(), vec![3, 64]);

        // Narrower source into a wider target leaves high bits alone.
        let mut wide = BitSet::new(200);
        wide.insert(199);
        let mut small = BitSet::new(10);
        small.insert(2);
        let mut all = BitSet::new(10);
        for v in 0..10 {
            all.insert(v);
        }
        wide.union_masked(&small, &all);
        assert_eq!(wide.iter().collect::<Vec<_>>(), vec![2, 199]);
    }

    #[test]
    fn subtract_removes() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for v in [0, 63, 64, 65, 127, 128, 199] {
            s.insert(v);
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 127, 128, 199]
        );
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(5);
        assert!(s.is_empty());
        s.insert(4);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(1000));
    }
}
