//! A fixed-capacity bitset for dataflow fixpoints.

/// A dense bitset over `0..capacity`.
///
/// # Examples
///
/// ```
/// use jumpslice_dataflow::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Builds a set over `0..capacity` directly from backing words in the
    /// [`BitSet::words`] layout. The vector is resized to fit and bits at
    /// or past `capacity` are cleared — word-parallel constructors (e.g. a
    /// bit-matrix transpose) can hand over whole words without edge-masking
    /// themselves.
    pub fn from_words(capacity: usize, mut words: Vec<u64>) -> BitSet {
        words.resize(capacity.div_ceil(64), 0);
        if capacity % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last &= !0u64 >> (64 - capacity % 64);
            }
        }
        BitSet { words, capacity }
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bitset index out of range");
        let (w, b) = (v / 64, v % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "bitset index out of range");
        let (w, b) = (v / 64, v % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        self.words[v / 64] & (1 << (v % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Unions `other ∩ mask` into `self`, word-parallel. `other` and `mask`
    /// must share a capacity; it may differ from `self`'s, in which case
    /// every bit of `mask` must lie below `min(self.capacity,
    /// other.capacity)` — words past the shorter operand are ignored.
    pub fn union_masked(&mut self, other: &BitSet, mask: &BitSet) {
        debug_assert_eq!(other.capacity, mask.capacity);
        for ((a, b), m) in self.words.iter_mut().zip(&other.words).zip(&mask.words) {
            *a |= b & m;
        }
    }

    /// Whether the two sets share any element, word-parallel. Capacities
    /// may differ; bits past the shorter operand are treated as absent.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Unions `other`'s elements in `[start, end)` into `self`,
    /// word-parallel with masked boundary words. Positions past either
    /// capacity contribute nothing.
    pub fn union_range(&mut self, other: &BitSet, start: usize, end: usize) {
        let end = end.min(self.capacity).min(other.capacity);
        if start >= end {
            return;
        }
        let w0 = start / 64;
        let w1 = (end - 1) / 64;
        let lo = !0u64 << (start % 64);
        let hi = !0u64 >> (63 - (end - 1) % 64);
        if w0 == w1 {
            self.words[w0] |= other.words[w0] & lo & hi;
            return;
        }
        self.words[w0] |= other.words[w0] & lo;
        for w in w0 + 1..w1 {
            self.words[w] |= other.words[w];
        }
        self.words[w1] |= other.words[w1] & hi;
    }

    /// The smallest element `>= v`, or `None` if there is none. A linear
    /// word scan with a masked first word — the cursor primitive behind
    /// ordered worklist draining.
    pub fn next_at_or_after(&self, v: usize) -> Option<usize> {
        if v >= self.capacity {
            return None;
        }
        let mut wi = v / 64;
        let mut w = self.words[wi] & (!0u64 << (v % 64));
        loop {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// Removes every element of `other` from `self`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The backing 64-bit words, least-significant block first: bit `b` of
    /// `words()[w]` is element `w * 64 + b`. For word-parallel operators
    /// that need an offset view (e.g. probing a span-trimmed mask against a
    /// full-width set).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Appends the little-endian wire form — `capacity` as a `u32`
    /// followed by exactly `capacity.div_ceil(64)` backing words — to
    /// `out`. The inverse of [`BitSet::decode_from`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` does not fit in a `u32` (no analysis in this
    /// workspace gets near that).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let cap = u32::try_from(self.capacity).expect("bitset capacity fits u32 on the wire");
        out.extend_from_slice(&cap.to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Reads one [`BitSet::encode_into`] record from the front of `input`,
    /// returning the set and the bytes consumed, or `None` if `input` is
    /// truncated. Never panics on hostile bytes — the caller treats `None`
    /// as corruption.
    pub fn decode_from(input: &[u8]) -> Option<(BitSet, usize)> {
        let cap_bytes: [u8; 4] = input.get(..4)?.try_into().ok()?;
        let capacity = u32::from_le_bytes(cap_bytes) as usize;
        let n_words = capacity.div_ceil(64);
        let end = 4 + n_words.checked_mul(8)?;
        let body = input.get(4..end)?;
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Some((BitSet::from_words(capacity, words), end))
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(129));
        assert!(!s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.insert(3);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(3));
    }

    #[test]
    fn union_masked_filters_and_tolerates_capacity_mismatch() {
        // Wider source into a narrower target: the mask confines every
        // surviving bit to the shared range.
        let mut target = BitSet::new(70);
        let mut src = BitSet::new(130);
        let mut mask = BitSet::new(130);
        for v in [0, 3, 64, 69] {
            src.insert(v);
        }
        for v in [3, 64] {
            mask.insert(v);
        }
        target.union_masked(&src, &mask);
        assert_eq!(target.iter().collect::<Vec<_>>(), vec![3, 64]);

        // Narrower source into a wider target leaves high bits alone.
        let mut wide = BitSet::new(200);
        wide.insert(199);
        let mut small = BitSet::new(10);
        small.insert(2);
        let mut all = BitSet::new(10);
        for v in 0..10 {
            all.insert(v);
        }
        wide.union_masked(&small, &all);
        assert_eq!(wide.iter().collect::<Vec<_>>(), vec![2, 199]);
    }

    #[test]
    fn subtract_removes() {
        let mut a = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(10);
        b.insert(2);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for v in [0, 63, 64, 65, 127, 128, 199] {
            s.insert(v);
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 63, 64, 65, 127, 128, 199]
        );
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(5);
        assert!(s.is_empty());
        s.insert(4);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn intersects_is_any_overlap() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(70);
        assert!(!a.intersects(&b));
        a.insert(129);
        b.insert(65);
        assert!(!a.intersects(&b), "no shared element, no overlap");
        a.insert(65);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a), "symmetric across capacities");
    }

    #[test]
    fn from_words_resizes_and_clears_past_capacity() {
        let s = BitSet::from_words(70, vec![0b1010, !0u64]);
        assert_eq!(s.capacity(), 70);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![1, 3, 64, 65, 66, 67, 68, 69]
        );
        // Too few words: padded with zeros.
        let s = BitSet::from_words(130, vec![1]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
        assert!(!s.contains(129));
        // Too many words: truncated.
        let s = BitSet::from_words(64, vec![2, !0u64, !0u64]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn union_range_masks_boundary_words() {
        let mut src = BitSet::new(200);
        for v in [0, 63, 64, 65, 127, 128, 199] {
            src.insert(v);
        }
        // Same-word range.
        let mut t = BitSet::new(200);
        t.union_range(&src, 63, 64);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![63]);
        // Cross-word range with both boundaries masked.
        let mut t = BitSet::new(200);
        t.union_range(&src, 64, 199);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![64, 65, 127, 128]);
        // Full range == union_with.
        let mut t = BitSet::new(200);
        t.union_range(&src, 0, 200);
        assert_eq!(t, src);
        // Empty and out-of-capacity ranges are no-ops.
        let mut t = BitSet::new(200);
        t.union_range(&src, 10, 10);
        t.union_range(&src, 300, 400);
        assert!(t.is_empty());
        // End past the shorter capacity is clamped.
        let mut narrow = BitSet::new(66);
        narrow.union_range(&src, 0, 500);
        assert_eq!(narrow.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65]);
    }

    #[test]
    fn union_range_matches_filtered_insert_exhaustively() {
        let mut src = BitSet::new(130);
        for v in [0, 1, 5, 63, 64, 100, 129] {
            src.insert(v);
        }
        for start in 0..=130 {
            for end in start..=130 {
                let mut got = BitSet::new(130);
                got.union_range(&src, start, end);
                let want: Vec<usize> = src.iter().filter(|&v| v >= start && v < end).collect();
                assert_eq!(got.iter().collect::<Vec<_>>(), want, "[{start},{end})");
            }
        }
    }

    #[test]
    fn next_at_or_after_scans_forward() {
        let mut s = BitSet::new(200);
        for v in [3, 64, 130] {
            s.insert(v);
        }
        assert_eq!(s.next_at_or_after(0), Some(3));
        assert_eq!(s.next_at_or_after(3), Some(3), "inclusive lower bound");
        assert_eq!(s.next_at_or_after(4), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(130));
        assert_eq!(s.next_at_or_after(131), None);
        assert_eq!(s.next_at_or_after(1000), None, "past capacity");
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(5);
        assert!(!s.contains(1000));
    }

    #[test]
    fn encode_decode_round_trips() {
        for cap in [0usize, 1, 63, 64, 65, 130, 200] {
            let mut s = BitSet::new(cap);
            for v in (0..cap).step_by(7) {
                s.insert(v);
            }
            let mut bytes = vec![0xAA]; // prefix survives untouched
            s.encode_into(&mut bytes);
            let (back, used) = BitSet::decode_from(&bytes[1..]).expect("well-formed");
            assert_eq!(back, s, "capacity {cap}");
            assert_eq!(used, bytes.len() - 1, "whole record consumed");
        }
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(129);
        let mut bytes = Vec::new();
        s.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                BitSet::decode_from(&bytes[..cut]).is_none(),
                "truncation at {cut} must be detected"
            );
        }
        // Trailing garbage is left for the caller's cursor, not consumed.
        bytes.push(0xFF);
        let (_, used) = BitSet::decode_from(&bytes).expect("full record present");
        assert_eq!(used, bytes.len() - 1);
    }

    #[test]
    fn decode_never_panics_on_hostile_capacity() {
        // A capacity claiming ~4 billion elements with no backing words:
        // the length check fails before any allocation-by-trust.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(BitSet::decode_from(&bytes).is_none());
    }
}
