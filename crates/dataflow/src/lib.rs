//! Dataflow analyses over the flowgraph: reaching definitions, def-use
//! chains (data dependence), and live variables.
//!
//! The data-dependence edges produced here are one half of the program
//! dependence graph (paper, §2): statement `u` is *data dependent* on
//! statement `d` when `d` defines a variable that may reach a use of the same
//! variable at `u`. Both analyses are classic iterative fixpoints over
//! compact bitsets.
//!
//! # Examples
//!
//! ```
//! use jumpslice_lang::parse;
//! use jumpslice_cfg::Cfg;
//! use jumpslice_dataflow::DataDeps;
//!
//! let p = parse("x = 1; y = x + 1; write(y);")?;
//! let cfg = Cfg::build(&p);
//! let dd = DataDeps::compute(&p, &cfg);
//! assert_eq!(dd.deps(p.at_line(2)), &[p.at_line(1)]); // y = x+1 depends on x = 1
//! assert_eq!(dd.deps(p.at_line(3)), &[p.at_line(2)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod live;
mod reaching;
mod stmtset;

pub use bitset::BitSet;
pub use live::LiveVars;
pub use reaching::{DataDeps, ReachingDefs, VarTable};
pub use stmtset::StmtSet;
