//! Live-variables analysis (backward may).
//!
//! Not needed by the slicing algorithms themselves, but used by tests as an
//! independent sanity oracle (a slice criterion variable must be live at the
//! criterion if the slice is nonempty) and by the ablation bench.

use crate::{BitSet, VarTable};
use jumpslice_cfg::Cfg;
use jumpslice_graph::NodeId;
use jumpslice_lang::{Name, Program};

/// Live variables at node entry/exit.
#[derive(Clone, Debug)]
pub struct LiveVars {
    vars: VarTable,
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl LiveVars {
    /// Runs the backward fixpoint.
    pub fn compute(prog: &Program, cfg: &Cfg) -> LiveVars {
        let vars = VarTable::of(prog);
        let n = cfg.graph().len();
        let nv = vars.len();
        let mut use_sets = vec![BitSet::new(nv); n];
        let mut def_sets = vec![BitSet::new(nv); n];
        for s in prog.stmt_ids() {
            let node = cfg.node(s).index();
            for u in prog.uses(s) {
                use_sets[node].insert(vars.index_of(u).expect("collected"));
            }
            if let Some(d) = prog.defs(s) {
                def_sets[node].insert(vars.index_of(d).expect("collected"));
            }
        }

        let mut live_in = vec![BitSet::new(nv); n];
        let mut live_out = vec![BitSet::new(nv); n];
        // Backward: iterate in postorder from entry (approximately reverse
        // flow order); plain fixpoint so order only affects speed.
        let order = jumpslice_graph::dfs_postorder(cfg.graph(), cfg.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                let i = node.index();
                let mut out = BitSet::new(nv);
                for &s in cfg.graph().succs(node) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                inn.subtract(&def_sets[i]);
                inn.union_with(&use_sets[i]);
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        LiveVars {
            vars,
            live_in,
            live_out,
        }
    }

    /// Whether `v` is live at the entry of `node`.
    pub fn live_in(&self, node: NodeId, v: Name) -> bool {
        self.vars
            .index_of(v)
            .is_some_and(|i| self.live_in[node.index()].contains(i))
    }

    /// Whether `v` is live at the exit of `node`.
    pub fn live_out(&self, node: NodeId, v: Name) -> bool {
        self.vars
            .index_of(v)
            .is_some_and(|i| self.live_out[node.index()].contains(i))
    }

    /// All variables live at the entry of `node`.
    pub fn live_in_vars(&self, node: NodeId) -> Vec<Name> {
        self.live_in[node.index()]
            .iter()
            .map(|i| self.vars.var(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn straight_line_liveness() {
        let p = parse("x = 1; y = x; write(y);").unwrap();
        let cfg = Cfg::build(&p);
        let lv = LiveVars::compute(&p, &cfg);
        let x = p.name("x").unwrap();
        let y = p.name("y").unwrap();
        assert!(lv.live_out(cfg.node(p.at_line(1)), x));
        assert!(!lv.live_out(cfg.node(p.at_line(2)), x));
        assert!(lv.live_in(cfg.node(p.at_line(3)), y));
        assert!(!lv.live_out(cfg.node(p.at_line(3)), y));
    }

    #[test]
    fn loop_keeps_variable_live() {
        let p = parse("x = 0; while (x < 3) { x = x + 1; } write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let lv = LiveVars::compute(&p, &cfg);
        let x = p.name("x").unwrap();
        assert!(lv.live_in(cfg.node(p.at_line(2)), x));
        assert!(lv.live_out(cfg.node(p.at_line(3)), x));
    }

    #[test]
    fn dead_assignment_not_live() {
        let p = parse("x = 1; x = 2; write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let lv = LiveVars::compute(&p, &cfg);
        let x = p.name("x").unwrap();
        assert!(!lv.live_out(cfg.node(p.at_line(1)), x), "first def is dead");
    }

    #[test]
    fn live_through_goto() {
        let p = parse("read(x); goto L; write(0); L: write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let lv = LiveVars::compute(&p, &cfg);
        let x = p.name("x").unwrap();
        assert!(lv.live_out(cfg.node(p.at_line(2)), x));
        let live = lv.live_in_vars(cfg.node(p.at_line(4)));
        assert_eq!(live, vec![x]);
    }
}
