//! Graphviz/ASCII rendering of flowgraphs for the figure harness.

use crate::{Cfg, CfgNode};
use jumpslice_lang::Program;
use std::fmt::Write as _;

/// Renders a flowgraph in Graphviz `dot` syntax, labeling statement nodes
/// with their paper-style lexical line numbers.
///
/// # Examples
///
/// ```
/// use jumpslice_lang::parse;
/// use jumpslice_cfg::{Cfg, cfg_dot};
/// let p = parse("x = 1; write(x);")?;
/// let dot = cfg_dot(&Cfg::build(&p), &p);
/// assert!(dot.starts_with("digraph cfg {"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cfg_dot(cfg: &Cfg, prog: &Program) -> String {
    let mut out = String::from("digraph cfg {\n");
    for n in cfg.graph().nodes() {
        let label = match cfg.node_kind(n) {
            CfgNode::Entry => "entry".to_owned(),
            CfgNode::Exit => "exit".to_owned(),
            CfgNode::Stmt(s) => format!("{}", prog.line_of(s)),
        };
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.index(), label);
    }
    for (a, b) in cfg.graph().edges() {
        let _ = writeln!(out, "  n{} -> n{};", a.index(), b.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn dot_contains_all_edges() {
        let p = parse("x = 1; write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let dot = cfg_dot(&cfg, &p);
        assert_eq!(
            dot.matches(" -> ").count(),
            cfg.graph().num_edges(),
            "{dot}"
        );
        assert!(dot.contains("label=\"entry\""));
        assert!(dot.contains("label=\"exit\""));
    }
}
