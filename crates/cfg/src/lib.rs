//! Statement-level control-flow graphs for mini-C programs.
//!
//! Every statement of a [`Program`] becomes one flowgraph node (compound
//! statements are represented by their predicate, exactly as in the paper's
//! Figure 2-a / Figure 4-a), plus distinguished `Entry` and `Exit` nodes. An
//! `Entry -> Exit` edge is always present, which makes every top-level
//! statement control dependent on `Entry` — the paper's "dummy predicate
//! node, viz., node 0".
//!
//! The builder records, for every jump statement, the node that would execute
//! next *if the jump were deleted* (its fall-through). That is exactly the
//! augmentation edge Ball–Horwitz and Choi–Ferrante add, so
//! [`Cfg::augmented_graph`] is a one-liner over this data, and it is also the
//! "immediate lexical successor" seed the LST construction cross-checks.
//!
//! # Examples
//!
//! ```
//! use jumpslice_lang::parse;
//! use jumpslice_cfg::Cfg;
//!
//! let p = parse("read(x); while (x > 0) { x = x - 1; } write(x);")?;
//! let cfg = Cfg::build(&p);
//! let w = cfg.node(p.at_line(2));
//! // The while-predicate has two successors: the body and the write.
//! assert_eq!(cfg.graph().succs(w).len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;

pub use dot::cfg_dot;

use jumpslice_graph::{reachable_from, DiGraph, DomTree, NodeId};
use jumpslice_lang::{Program, StmtId, StmtKind};

/// What a flowgraph node stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CfgNode {
    /// The unique entry node.
    Entry,
    /// The unique exit node.
    Exit,
    /// A program statement (compound statements are their predicates).
    Stmt(StmtId),
}

/// A control-flow graph over the statements of one [`Program`].
#[derive(Clone, Debug)]
pub struct Cfg {
    graph: DiGraph,
    entry: NodeId,
    exit: NodeId,
    /// Fall-through node per jump node (`None` for non-jumps).
    fallthrough: Vec<Option<NodeId>>,
    num_stmts: usize,
}

impl Cfg {
    /// Builds the flowgraph of `prog`.
    ///
    /// Node layout: node 0 is `Entry`, node 1 is `Exit`, and statement `s`
    /// maps to node `s.index() + 2`.
    pub fn build(prog: &Program) -> Cfg {
        Builder::new(prog).build()
    }

    /// Reassembles a flowgraph from persisted parts, for codecs restoring
    /// an analysis without re-running [`Cfg::build`]. The node layout is
    /// fixed (entry 0, exit 1, statement `s` at `s.index() + 2`), so a
    /// graph over `num_stmts + 2` nodes plus the per-node fall-through
    /// array is the whole state. Returns `None` when the shapes disagree —
    /// wrong node count, fall-through array of a different graph, or a
    /// fall-through target out of bounds. Edge-level fidelity to any
    /// particular program is the caller's integrity check, not this one.
    pub fn from_parts(
        num_stmts: usize,
        graph: DiGraph,
        fallthrough: Vec<Option<NodeId>>,
    ) -> Option<Cfg> {
        if num_stmts.checked_add(2)? != graph.len() || fallthrough.len() != graph.len() {
            return None;
        }
        if fallthrough
            .iter()
            .flatten()
            .any(|t| t.index() >= graph.len())
        {
            return None;
        }
        Some(Cfg {
            graph,
            entry: NodeId::new(0),
            exit: NodeId::new(1),
            fallthrough,
            num_stmts,
        })
    }

    /// The underlying directed graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of statements covered by this graph.
    pub fn num_stmts(&self) -> usize {
        self.num_stmts
    }

    /// The flowgraph node of a statement.
    pub fn node(&self, s: StmtId) -> NodeId {
        NodeId::new(s.index() + 2)
    }

    /// What a node stands for.
    pub fn node_kind(&self, n: NodeId) -> CfgNode {
        match n.index() {
            0 => CfgNode::Entry,
            1 => CfgNode::Exit,
            i => CfgNode::Stmt(StmtId::from_index(i - 2)),
        }
    }

    /// The statement behind a node, if it is a statement node.
    pub fn stmt(&self, n: NodeId) -> Option<StmtId> {
        match self.node_kind(n) {
            CfgNode::Stmt(s) => Some(s),
            _ => None,
        }
    }

    /// The fall-through node of a jump node: where control would go if the
    /// jump were deleted. `None` for non-jump nodes.
    ///
    /// For a fused conditional goto this coincides with its false-edge
    /// successor.
    pub fn fallthrough(&self, n: NodeId) -> Option<NodeId> {
        self.fallthrough[n.index()]
    }

    /// The (true, false) successors of a two-way predicate node (`if`,
    /// `while`, `do-while`, fused conditional goto), relying on the
    /// builder's edge-insertion order: the taken/true edge is always added
    /// first. Returns `None` for non-predicates and for `switch`. When both
    /// arms reach the same node (the edge was deduplicated), both elements
    /// are that node.
    pub fn branch_succs(&self, prog: &Program, n: NodeId) -> Option<(NodeId, NodeId)> {
        let s = self.stmt(n)?;
        match &prog.stmt(s).kind {
            StmtKind::If { .. }
            | StmtKind::While { .. }
            | StmtKind::DoWhile { .. }
            | StmtKind::CondGoto { .. } => match self.graph.succs(n) {
                [only] => Some((*only, *only)),
                [t, f] => Some((*t, *f)),
                _ => None,
            },
            _ => None,
        }
    }

    /// The postdominator tree: the dominator tree of the reversed graph
    /// rooted at `Exit` (paper, §3).
    pub fn postdominators(&self) -> DomTree {
        DomTree::iterative(&self.graph.reversed(), self.exit)
    }

    /// The dominator tree rooted at `Entry`.
    pub fn dominators(&self) -> DomTree {
        DomTree::iterative(&self.graph, self.entry)
    }

    /// The Ball–Horwitz / Choi–Ferrante *augmented* flowgraph: every
    /// unconditional jump gets an additional (never-executed) edge to its
    /// fall-through node, turning it into a pseudo-predicate.
    ///
    /// The baseline slicer computes control dependence from this graph while
    /// keeping data dependence on the unaugmented one.
    pub fn augmented_graph(&self) -> DiGraph {
        let mut g = self.graph.clone();
        for n in self.graph.nodes() {
            if let (Some(ft), Some(s)) = (self.fallthrough[n.index()], self.stmt(n)) {
                let _ = s;
                g.add_edge(n, ft);
            }
        }
        g
    }

    /// Whether every node reachable from `Entry` can reach `Exit` (no
    /// genuinely infinite loops). The slicing algorithms require this; the
    /// program generator guarantees it.
    pub fn all_reach_exit(&self) -> bool {
        let fwd = reachable_from(&self.graph, self.entry);
        let back = reachable_from(&self.graph.reversed(), self.exit);
        self.graph
            .nodes()
            .all(|n| !fwd[n.index()] || back[n.index()])
    }

    /// Nodes reachable from `Entry`.
    pub fn reachable(&self) -> Vec<bool> {
        reachable_from(&self.graph, self.entry)
    }
}

struct Builder<'p> {
    prog: &'p Program,
    graph: DiGraph,
    entry: NodeId,
    exit: NodeId,
    fallthrough: Vec<Option<NodeId>>,
}

#[derive(Clone, Copy)]
struct JumpCtx {
    break_to: Option<NodeId>,
    continue_to: Option<NodeId>,
}

impl<'p> Builder<'p> {
    fn new(prog: &'p Program) -> Self {
        let n = prog.len() + 2;
        let graph = DiGraph::with_nodes(n);
        Builder {
            prog,
            graph,
            entry: NodeId::new(0),
            exit: NodeId::new(1),
            fallthrough: vec![None; n],
        }
    }

    fn node(&self, s: StmtId) -> NodeId {
        NodeId::new(s.index() + 2)
    }

    /// The node where execution of `s` begins: the statement's own node,
    /// except for `do-while`, whose body runs before its predicate.
    fn first_node(&self, s: StmtId) -> NodeId {
        match &self.prog.stmt(s).kind {
            StmtKind::DoWhile { body, .. } => match body.first() {
                Some(&f) => self.first_node(f),
                None => self.node(s),
            },
            _ => self.node(s),
        }
    }

    fn label_entry(&self, l: jumpslice_lang::Label) -> NodeId {
        let target = self
            .prog
            .label_target(l)
            .expect("validated programs have resolved labels");
        self.first_node(target)
    }

    fn build(mut self) -> Cfg {
        // The dummy-predicate edge: every top-level statement becomes
        // control dependent on Entry.
        self.graph.add_edge(self.entry, self.exit);
        let ctx = JumpCtx {
            break_to: None,
            continue_to: None,
        };
        let body = self.prog.body().to_vec();
        let first = self.wire_block(&body, self.exit, ctx);
        self.graph.add_edge(self.entry, first);
        Cfg {
            graph: self.graph,
            entry: self.entry,
            exit: self.exit,
            fallthrough: self.fallthrough,
            num_stmts: self.prog.len(),
        }
    }

    /// Wires a statement list whose normal continuation is `follow`; returns
    /// the block's entry node.
    fn wire_block(&mut self, block: &[StmtId], follow: NodeId, ctx: JumpCtx) -> NodeId {
        let mut next = follow;
        for &s in block.iter().rev() {
            self.wire_stmt(s, next, ctx);
            next = self.first_node(s);
        }
        next
    }

    fn wire_stmt(&mut self, s: StmtId, follow: NodeId, ctx: JumpCtx) {
        let n = self.node(s);
        match &self.prog.stmt(s).kind.clone() {
            StmtKind::Assign { .. }
            | StmtKind::Read { .. }
            | StmtKind::Write { .. }
            | StmtKind::Skip => {
                self.graph.add_edge(n, follow);
            }
            StmtKind::Goto { target } => {
                self.graph.add_edge(n, self.label_entry(*target));
                self.fallthrough[n.index()] = Some(follow);
            }
            StmtKind::CondGoto { target, .. } => {
                self.graph.add_edge(n, self.label_entry(*target));
                self.graph.add_edge(n, follow);
                self.fallthrough[n.index()] = Some(follow);
            }
            StmtKind::Break => {
                let to = ctx.break_to.expect("validated: break inside breakable");
                self.graph.add_edge(n, to);
                self.fallthrough[n.index()] = Some(follow);
            }
            StmtKind::Continue => {
                let to = ctx.continue_to.expect("validated: continue inside loop");
                self.graph.add_edge(n, to);
                self.fallthrough[n.index()] = Some(follow);
            }
            StmtKind::Return { .. } => {
                self.graph.add_edge(n, self.exit);
                self.fallthrough[n.index()] = Some(follow);
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = self.wire_block(then_branch, follow, ctx);
                let e = self.wire_block(else_branch, follow, ctx);
                self.graph.add_edge(n, t);
                self.graph.add_edge(n, e);
            }
            StmtKind::While { body, .. } => {
                let inner = JumpCtx {
                    break_to: Some(follow),
                    continue_to: Some(n),
                };
                let b = self.wire_block(body, n, inner);
                self.graph.add_edge(n, b);
                self.graph.add_edge(n, follow);
            }
            StmtKind::DoWhile { body, .. } => {
                let inner = JumpCtx {
                    break_to: Some(follow),
                    continue_to: Some(n),
                };
                let b = self.wire_block(body, n, inner);
                // Predicate true -> loop back to the body entry; false ->
                // fall out.
                self.graph.add_edge(n, b);
                self.graph.add_edge(n, follow);
            }
            StmtKind::Switch { arms, .. } => {
                let inner = JumpCtx {
                    break_to: Some(follow),
                    continue_to: ctx.continue_to,
                };
                // Wire arms back-to-front so each arm knows its fall-through
                // continuation (C semantics: run into the next arm's body).
                let mut entries = vec![follow; arms.len() + 1];
                for (i, arm) in arms.iter().enumerate().rev() {
                    entries[i] = self.wire_block(&arm.body, entries[i + 1], inner);
                }
                let mut has_default = false;
                for (i, arm) in arms.iter().enumerate() {
                    self.graph.add_edge(n, entries[i]);
                    if arm.guards.contains(&jumpslice_lang::CaseGuard::Default) {
                        has_default = true;
                    }
                }
                if !has_default {
                    self.graph.add_edge(n, follow);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    fn n(cfg: &Cfg, p: &Program, line: usize) -> NodeId {
        cfg.node(p.at_line(line))
    }

    #[test]
    fn from_parts_round_trips_a_built_graph() {
        let p = parse("L: read(x); while (x) { if (x > 1) break; goto L; } write(x);").unwrap();
        let built = Cfg::build(&p);
        let fallthrough: Vec<_> = (0..built.graph().len())
            .map(|i| built.fallthrough(NodeId::new(i)))
            .collect();
        let back = Cfg::from_parts(p.len(), built.graph().clone(), fallthrough.clone())
            .expect("a built graph's own parts are valid");
        assert_eq!(back.entry(), built.entry());
        assert_eq!(back.exit(), built.exit());
        assert_eq!(back.num_stmts(), built.num_stmts());
        for node in built.graph().nodes() {
            assert_eq!(back.graph().succs(node), built.graph().succs(node));
            assert_eq!(back.fallthrough(node), built.fallthrough(node));
        }

        // Shape lies are rejected: wrong statement count, short or
        // out-of-bounds fall-through.
        assert!(Cfg::from_parts(p.len() + 1, built.graph().clone(), fallthrough.clone()).is_none());
        assert!(
            Cfg::from_parts(p.len(), built.graph().clone(), fallthrough[1..].to_vec()).is_none()
        );
        let mut bad = fallthrough;
        bad[0] = Some(NodeId::new(built.graph().len()));
        assert!(Cfg::from_parts(p.len(), built.graph().clone(), bad).is_none());
    }

    #[test]
    fn straight_line_chain() {
        let p = parse("a = 1; b = 2; write(b);").unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.graph().has_edge(cfg.entry(), n(&cfg, &p, 1)));
        assert!(cfg.graph().has_edge(n(&cfg, &p, 1), n(&cfg, &p, 2)));
        assert!(cfg.graph().has_edge(n(&cfg, &p, 3), cfg.exit()));
        assert!(cfg.graph().has_edge(cfg.entry(), cfg.exit()));
        assert!(cfg.all_reach_exit());
    }

    #[test]
    fn if_else_diamond() {
        let p = parse("if (c) { a = 1; } else { a = 2; } write(a);").unwrap();
        let cfg = Cfg::build(&p);
        let ifn = n(&cfg, &p, 1);
        assert_eq!(cfg.graph().succs(ifn).len(), 2);
        assert!(cfg.graph().has_edge(n(&cfg, &p, 2), n(&cfg, &p, 4)));
        assert!(cfg.graph().has_edge(n(&cfg, &p, 3), n(&cfg, &p, 4)));
    }

    #[test]
    fn if_without_else_falls_through() {
        let p = parse("if (c) { a = 1; } write(a);").unwrap();
        let cfg = Cfg::build(&p);
        let ifn = n(&cfg, &p, 1);
        assert!(cfg.graph().has_edge(ifn, n(&cfg, &p, 2)));
        assert!(cfg.graph().has_edge(ifn, n(&cfg, &p, 3)));
    }

    #[test]
    fn while_loop_shape() {
        let p = parse("while (c) { a = 1; } write(a);").unwrap();
        let cfg = Cfg::build(&p);
        let w = n(&cfg, &p, 1);
        let body = n(&cfg, &p, 2);
        assert!(cfg.graph().has_edge(w, body));
        assert!(cfg.graph().has_edge(w, n(&cfg, &p, 3)));
        assert!(
            cfg.graph().has_edge(body, w),
            "body loops back to predicate"
        );
    }

    #[test]
    fn do_while_enters_body_first() {
        let p = parse("do { a = 1; } while (c); write(a);").unwrap();
        let cfg = Cfg::build(&p);
        let dw = n(&cfg, &p, 1);
        let body = n(&cfg, &p, 2);
        assert!(
            cfg.graph().has_edge(cfg.entry(), body),
            "entry goes to body"
        );
        assert!(cfg.graph().has_edge(body, dw));
        assert!(cfg.graph().has_edge(dw, body));
        assert!(cfg.graph().has_edge(dw, n(&cfg, &p, 3)));
    }

    #[test]
    fn break_and_continue_edges() {
        let p = parse("while (c) { if (a) break; if (b) continue; x = 1; } write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let w = n(&cfg, &p, 1);
        let brk = n(&cfg, &p, 3);
        let cont = n(&cfg, &p, 5);
        let after = n(&cfg, &p, 7);
        assert!(cfg.graph().has_edge(brk, after));
        assert!(cfg.graph().has_edge(cont, w));
        // Fall-throughs: break's is the statement after the if; continue's
        // is x = 1.
        assert_eq!(cfg.fallthrough(brk), Some(n(&cfg, &p, 4)));
        assert_eq!(cfg.fallthrough(cont), Some(n(&cfg, &p, 6)));
    }

    #[test]
    fn goto_and_cond_goto_edges() {
        let p = parse("L3: if (eof()) goto L14; x = 1; goto L3; L14: write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let cj = n(&cfg, &p, 1);
        let asn = n(&cfg, &p, 2);
        let gt = n(&cfg, &p, 3);
        let wr = n(&cfg, &p, 4);
        assert!(cfg.graph().has_edge(cj, wr), "true edge to L14");
        assert!(cfg.graph().has_edge(cj, asn), "false edge falls through");
        assert!(cfg.graph().has_edge(gt, cj), "goto back to L3");
        assert_eq!(cfg.fallthrough(gt), Some(wr));
        assert_eq!(cfg.fallthrough(cj), Some(asn));
    }

    #[test]
    fn return_goes_to_exit() {
        let p = parse("if (c) return; write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let ret = n(&cfg, &p, 2);
        assert!(cfg.graph().has_edge(ret, cfg.exit()));
        assert_eq!(cfg.fallthrough(ret), Some(n(&cfg, &p, 3)));
    }

    #[test]
    fn switch_fallthrough_and_default() {
        let p =
            parse("switch (c) { case 1: a = 1; case 2: b = 2; break; default: d = 3; } write(a);")
                .unwrap();
        let cfg = Cfg::build(&p);
        let sw = n(&cfg, &p, 1);
        let a1 = n(&cfg, &p, 2);
        let b2 = n(&cfg, &p, 3);
        let brk = n(&cfg, &p, 4);
        let d3 = n(&cfg, &p, 5);
        let wr = n(&cfg, &p, 6);
        assert!(cfg.graph().has_edge(sw, a1));
        assert!(cfg.graph().has_edge(sw, b2));
        assert!(cfg.graph().has_edge(sw, d3));
        // default exists: no direct switch -> follow edge
        assert!(!cfg.graph().has_edge(sw, wr));
        assert!(
            cfg.graph().has_edge(a1, b2),
            "case 1 falls through to case 2"
        );
        assert!(cfg.graph().has_edge(brk, wr));
        assert!(cfg.graph().has_edge(d3, wr));
    }

    #[test]
    fn switch_without_default_can_skip() {
        let p = parse("switch (c) { case 1: a = 1; } write(a);").unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.graph().has_edge(n(&cfg, &p, 1), n(&cfg, &p, 3)));
    }

    #[test]
    fn postdominators_of_diamond() {
        let p = parse("if (c) { a = 1; } else { a = 2; } write(a);").unwrap();
        let cfg = Cfg::build(&p);
        let pdom = cfg.postdominators();
        let wr = n(&cfg, &p, 4);
        assert_eq!(pdom.idom(n(&cfg, &p, 1)), Some(wr));
        assert_eq!(pdom.idom(wr), Some(cfg.exit()));
    }

    #[test]
    fn augmented_graph_adds_jump_fallthrough_edges() {
        let p = parse("L: x = 1; goto L; write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let gt = n(&cfg, &p, 2);
        let wr = n(&cfg, &p, 3);
        assert!(!cfg.graph().has_edge(gt, wr));
        let aug = cfg.augmented_graph();
        assert!(aug.has_edge(gt, wr));
        // Original stays intact (the point of the paper's algorithm).
        assert!(!cfg.graph().has_edge(gt, wr));
    }

    #[test]
    fn infinite_loop_detected() {
        let p = parse("while (1) { x = 1; } write(x);").unwrap();
        let cfg = Cfg::build(&p);
        // The CFG still has a false edge for while(1) — constant conditions
        // are not folded — so everything reaches exit structurally.
        assert!(cfg.all_reach_exit());
        // But a self-looping goto genuinely cannot reach exit.
        let p2 = parse("L: goto L; write(x);").unwrap();
        let cfg2 = Cfg::build(&p2);
        assert!(!cfg2.all_reach_exit());
    }

    #[test]
    fn unreachable_code_after_return() {
        let p = parse("return; x = 1;").unwrap();
        let cfg = Cfg::build(&p);
        let reach = cfg.reachable();
        assert!(!reach[cfg.node(p.at_line(2)).index()]);
    }

    #[test]
    fn node_kind_roundtrip() {
        let p = parse("x = 1;").unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.node_kind(cfg.entry()), CfgNode::Entry);
        assert_eq!(cfg.node_kind(cfg.exit()), CfgNode::Exit);
        let s = p.at_line(1);
        assert_eq!(cfg.node_kind(cfg.node(s)), CfgNode::Stmt(s));
        assert_eq!(cfg.stmt(cfg.node(s)), Some(s));
        assert_eq!(cfg.stmt(cfg.entry()), None);
    }
}

#[cfg(test)]
mod branch_tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn branch_succs_polarity() {
        let p = parse(
            "if (a) { x = 1; } else { x = 2; }
             while (b) { y = 1; }
             L: if (c) goto L;
             write(x);",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let n = |l: usize| cfg.node(p.at_line(l));
        // if: true -> then (x=1), false -> else (x=2).
        assert_eq!(cfg.branch_succs(&p, n(1)), Some((n(2), n(3))));
        // while: true -> body, false -> following statement.
        assert_eq!(cfg.branch_succs(&p, n(4)), Some((n(5), n(6))));
        // condgoto: true -> label target (itself), false -> fall-through.
        assert_eq!(cfg.branch_succs(&p, n(6)), Some((n(6), n(7))));
        // Non-predicates have no branch successors.
        assert_eq!(cfg.branch_succs(&p, n(2)), None);
    }

    #[test]
    fn branch_succs_deduped_edges() {
        // Both arms empty: the if has one successor serving both branches.
        let p = parse("if (a) { } write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let n1 = cfg.node(p.at_line(1));
        let n2 = cfg.node(p.at_line(2));
        assert_eq!(cfg.branch_succs(&p, n1), Some((n2, n2)));
    }
}
