//! Random edit generation for the differential harness.
//!
//! Given a program and a deterministic RNG, [`random_edit`] produces one
//! edit whose path resolves in that program. The edit may still be
//! *rejected* by the session (a toggle can orphan a label or strand a
//! loop); the harness counts rejections and moves on — a rejected edit
//! must leave the session state byte-identical, which is itself part of
//! what the fuzzing checks.

use crate::apply::has_primary_expr;
use crate::edit::{Edit, EditExpr, JumpKind, NewStmt};
use jumpslice_lang::{path_of, BinOp, Program, StmtId, StmtPath};
use jumpslice_testkit::Rng;

fn var_pool(p: &Program) -> Vec<String> {
    let mut vars: Vec<String> = p
        .defined_vars()
        .iter()
        .map(|&n| p.name_str(n).to_owned())
        .collect();
    if vars.is_empty() {
        vars.push("v0".to_owned());
    }
    vars
}

fn random_expr(rng: &mut Rng, vars: &[String], depth: usize) -> EditExpr {
    if depth == 0 || rng.gen_bool(0.45) {
        if rng.gen_bool(0.7) {
            EditExpr::Var(vars[rng.gen_range(0..vars.len())].clone())
        } else {
            EditExpr::Num(rng.gen_range(0..10usize) as i64)
        }
    } else {
        const OPS: [BinOp; 6] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Lt,
            BinOp::Gt,
            BinOp::Eq,
        ];
        let op = OPS[rng.gen_range(0..OPS.len())];
        let l = random_expr(rng, vars, depth - 1);
        let r = random_expr(rng, vars, depth - 1);
        EditExpr::bin(op, l, r)
    }
}

fn random_new_stmt(rng: &mut Rng, vars: &[String]) -> NewStmt {
    // Occasionally define a brand-new variable: edits must be able to grow
    // the interner.
    let var = if rng.gen_bool(0.15) {
        format!("n{}", rng.gen_range(0..3usize))
    } else {
        vars[rng.gen_range(0..vars.len())].clone()
    };
    match rng.gen_range(0..10usize) {
        0..=4 => NewStmt::Assign {
            var,
            rhs: random_expr(rng, vars, 2),
        },
        5..=6 => NewStmt::Read { var },
        7..=8 => NewStmt::Write {
            arg: random_expr(rng, vars, 2),
        },
        _ => NewStmt::Skip,
    }
}

fn path_to(p: &Program, s: StmtId) -> StmtPath {
    path_of(p, s).expect("lexical statements are reachable from the body")
}

fn random_insert(rng: &mut Rng, p: &Program, order: &[StmtId], vars: &[String]) -> Edit {
    // Insert before a random statement, or append at the top level.
    let k = rng.gen_range(0..order.len() + 1);
    let at = if k < order.len() {
        path_to(p, order[k])
    } else {
        StmtPath::root(p.body().len())
    };
    Edit::InsertStmt {
        at,
        stmt: random_new_stmt(rng, vars),
    }
}

/// Generates one random edit whose path resolves in `p`.
pub fn random_edit(rng: &mut Rng, p: &Program) -> Edit {
    let order = p.lexical_order();
    let vars = var_pool(p);
    if order.is_empty() {
        return Edit::InsertStmt {
            at: StmtPath::root(0),
            stmt: random_new_stmt(rng, &vars),
        };
    }

    let roll = rng.gen_range(0..100usize);
    if roll < 40 {
        // Replace the primary expression of a random eligible statement.
        let eligible: Vec<StmtId> = order
            .iter()
            .copied()
            .filter(|&s| has_primary_expr(&p.stmt(s).kind))
            .collect();
        if let Some(&t) = eligible.get(rng.gen_range(0..eligible.len().max(1))) {
            return Edit::ReplaceExpr {
                at: path_to(p, t),
                with: random_expr(rng, &vars, 2),
            };
        }
        random_insert(rng, p, &order, &vars)
    } else if roll < 65 {
        random_insert(rng, p, &order, &vars)
    } else if roll < 85 {
        let t = order[rng.gen_range(0..order.len())];
        Edit::DeleteStmt { at: path_to(p, t) }
    } else {
        let simple: Vec<StmtId> = order
            .iter()
            .copied()
            .filter(|&s| !p.stmt(s).kind.is_compound())
            .collect();
        let Some(&t) = simple.get(rng.gen_range(0..simple.len().max(1))) else {
            return random_insert(rng, p, &order, &vars);
        };
        let labels: Vec<String> = p.all_labels().map(|l| p.label_str(l).to_owned()).collect();
        let jump = match rng.gen_range(0..4usize) {
            0 => JumpKind::Break,
            1 => JumpKind::Continue,
            2 => JumpKind::Return,
            _ if !labels.is_empty() => {
                JumpKind::Goto(labels[rng.gen_range(0..labels.len())].clone())
            }
            _ => JumpKind::Break,
        };
        Edit::ToggleJump {
            at: path_to(p, t),
            jump,
        }
    }
}
