//! The edit-and-reslice session.
//!
//! An [`EditSession`] owns a program together with the analysis artifacts
//! computed for it so far, applies edits from the edit language, and keeps
//! whatever the edit left valid instead of recomputing it. Three paths,
//! from cheapest to priciest:
//!
//! * **Expression patch** — a [`Edit::ReplaceExpr`] changes the *uses* of
//!   one statement and nothing else: ids, flowgraph shape, definitions,
//!   postdominators, control dependence, the LST, and the entire
//!   reaching-definitions solution all survive. Only the PDG's data edges
//!   into the edited statement are repointed, in place.
//! * **Seeded re-solve** — inserting or deleting one simple, unlabeled,
//!   non-jump statement shifts ids and splices the flowgraph, so the
//!   structural artifacts are rebuilt (cheap, linear); the expensive
//!   reaching-definitions fixpoint is instead *re-solved from a seed*
//!   translated out of the old solution across the statement map (word
//!   parallel when ids only shift at the end), and the PDG's data half is
//!   *patched*: only statements whose reaching facts the solve actually
//!   moved are repointed.
//! * **Full rebuild** — anything that changes jump structure (toggles,
//!   edits to labeled or compound or jump statements) falls back to
//!   recomputing everything. The fallback is counted, so tests can assert
//!   exactly when the fast paths were taken.
//!
//! The invariant behind all three: after every `apply`, slicing through
//! the session is **identical** to slicing a freshly analyzed copy of the
//! edited program. `difftest --mode incr` fuzzes exactly this.

use crate::apply::{apply_edit, Applied};
use crate::edit::{Edit, EditError};
use jumpslice_cfg::Cfg;
use jumpslice_core::{Analysis, AnalysisSeed, BatchSlicer, Criterion, Slice, SliceFn};
use jumpslice_dataflow::ReachingDefs;
use jumpslice_lang::{Name, Program, StmtId};
use jumpslice_obs as obs;
use jumpslice_pdg::{ControlDeps, Pdg};

/// Which invalidation path an accepted edit took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyPath {
    /// Everything reused; PDG data edges of one statement repointed.
    ExprPatch,
    /// Structural artifacts rebuilt; reaching definitions re-solved from a
    /// seed; PDG derived from the warm solution.
    SeededResolve,
    /// Explicit fallback: every artifact recomputed lazily from scratch.
    FullRebuild,
}

/// Per-session counters, one per [`ApplyPath`] plus rejections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Accepted edits, total.
    pub edits: usize,
    /// Edits that took [`ApplyPath::ExprPatch`].
    pub expr_patches: usize,
    /// Edits that took [`ApplyPath::SeededResolve`].
    pub seeded_resolves: usize,
    /// Edits that fell back to [`ApplyPath::FullRebuild`].
    pub full_rebuilds: usize,
    /// Edits rejected with an [`EditError`] (session state unchanged).
    pub rejected: usize,
}

/// What one accepted edit did, as reported by [`EditSession::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditOutcome {
    /// The invalidation path taken.
    pub path: ApplyPath,
    /// Statements whose cached dataflow facts had to be recomputed: the
    /// edit site for an expression patch, the edit site plus every
    /// definition of an inserted definition's variable for a seeded
    /// re-solve (deletions dirty no variable), and the whole program for a
    /// full rebuild.
    pub dirty_stmts: usize,
    /// Analysis phases carried over from before the edit (of the four lazy
    /// ones: reaching defs, PDG, postdominators, LST). Phases never forced
    /// before the edit are not counted — there was nothing to reuse.
    pub reused_phases: usize,
    /// New id of the statement the edit produced or modified (`None` for a
    /// deletion).
    pub touched: Option<StmtId>,
}

/// An editable program with warm, selectively-invalidated analyses.
#[derive(Debug)]
pub struct EditSession {
    prog: Program,
    /// Artifacts valid for `prog`. Held detached so the session can own
    /// both the program and its analyses without a self-borrow.
    seed: AnalysisSeed,
    stats: IncrStats,
}

impl EditSession {
    /// Opens a session on `prog`.
    ///
    /// # Panics
    ///
    /// Panics like [`Analysis::new`] if some statement cannot reach the
    /// exit. Callers handling untrusted input (the serve daemon) should use
    /// [`try_new`](EditSession::try_new) instead.
    pub fn new(prog: Program) -> EditSession {
        EditSession::try_new(prog).unwrap_or_else(|_| {
            panic!(
                "program has statements that cannot reach the exit; postdominators are undefined"
            )
        })
    }

    /// Opens a session on `prog`, rejecting programs no slicer is defined
    /// for instead of panicking — the entry point for untrusted sources.
    ///
    /// # Errors
    ///
    /// [`EditError::Unanalyzable`] when some statement cannot reach the
    /// exit (postdominators, and with them every jump-aware slicer, are
    /// undefined for such programs).
    pub fn try_new(prog: Program) -> Result<EditSession, EditError> {
        let cfg = Cfg::build(&prog);
        if !cfg.all_reach_exit() {
            return Err(EditError::Unanalyzable);
        }
        Ok(EditSession {
            prog,
            seed: AnalysisSeed {
                cfg: Some(cfg),
                ..AnalysisSeed::default()
            },
            stats: IncrStats::default(),
        })
    }

    /// Opens a session on `prog` with analysis artifacts restored from a
    /// snapshot (or any other trusted out-of-band source). The seed's
    /// correctness contract is [`AnalysisSeed`]'s: every artifact present
    /// must match `prog`. A seed without a flowgraph gets one built here,
    /// under the same unanalyzable-program check as
    /// [`try_new`](EditSession::try_new).
    ///
    /// # Errors
    ///
    /// [`EditError::Unanalyzable`] when some statement cannot reach the
    /// exit.
    pub fn try_with_seed(prog: Program, mut seed: AnalysisSeed) -> Result<EditSession, EditError> {
        let cfg = match seed.cfg.take() {
            Some(cfg) => cfg,
            None => Cfg::build(&prog),
        };
        if !cfg.all_reach_exit() {
            return Err(EditError::Unanalyzable);
        }
        seed.cfg = Some(cfg);
        Ok(EditSession {
            prog,
            seed,
            stats: IncrStats::default(),
        })
    }

    /// The artifacts currently valid for the session's program — whatever
    /// the last [`with_analysis`](EditSession::with_analysis) run forced
    /// (the snapshot store serializes this after warming).
    pub fn seed(&self) -> &AnalysisSeed {
        &self.seed
    }

    /// The current program.
    pub fn prog(&self) -> &Program {
        &self.prog
    }

    /// Path and rejection counters since the session opened.
    pub fn stats(&self) -> IncrStats {
        self.stats
    }

    /// Runs `f` against an [`Analysis`] of the current program, pre-filled
    /// with every artifact that survived the edits so far. Artifacts `f`
    /// forces are harvested back into the session, so later calls (and
    /// later edits) reuse them.
    pub fn with_analysis<R>(&mut self, f: impl FnOnce(&Analysis<'_>) -> R) -> R {
        let seed = std::mem::take(&mut self.seed);
        let a = Analysis::with_seed(&self.prog, seed);
        let r = f(&a);
        self.seed = a.into_seed();
        r
    }

    /// Answers a batch of criteria with `algo`, reusing surviving state.
    /// The analysis is warmed first so the batch engine shares fully
    /// materialized artifacts.
    pub fn slice_batch(&mut self, algo: SliceFn, criteria: &[Criterion]) -> Vec<Slice> {
        self.with_analysis(|a| {
            a.warm();
            BatchSlicer::new(a).slice_all(algo, criteria)
        })
    }

    /// Applies one edit, selectively invalidating cached analyses.
    ///
    /// # Errors
    ///
    /// A rejected edit (unresolvable path, invalid or unanalyzable result)
    /// returns an [`EditError`] and leaves the session untouched.
    pub fn apply(&mut self, edit: &Edit) -> Result<EditOutcome, EditError> {
        let applied = match apply_edit(&self.prog, edit) {
            Ok(a) => a,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        let new_cfg = Cfg::build(&applied.prog);
        if !new_cfg.all_reach_exit() {
            self.stats.rejected += 1;
            return Err(EditError::Unanalyzable);
        }

        let outcome = match self.classify(edit, &applied) {
            ApplyPath::ExprPatch => self.patch_expr(applied, new_cfg),
            ApplyPath::SeededResolve => self.seeded_resolve(edit, applied, new_cfg),
            ApplyPath::FullRebuild => self.full_rebuild(applied, new_cfg),
        };

        self.stats.edits += 1;
        match outcome.path {
            ApplyPath::ExprPatch => self.stats.expr_patches += 1,
            ApplyPath::SeededResolve => self.stats.seeded_resolves += 1,
            ApplyPath::FullRebuild => self.stats.full_rebuilds += 1,
        }
        obs::record(|| obs::Event::Count {
            name: "incr.dirty_stmts",
            value: outcome.dirty_stmts as u64,
        });
        obs::record(|| obs::Event::Count {
            name: "incr.reused_phases",
            value: outcome.reused_phases as u64,
        });
        obs::record(|| obs::Event::Count {
            name: match outcome.path {
                ApplyPath::FullRebuild => "incr.fallback",
                _ => "incr.fast_path",
            },
            value: 1,
        });
        Ok(outcome)
    }

    /// Picks the invalidation path for an edit that already applied
    /// cleanly.
    fn classify(&self, edit: &Edit, applied: &Applied) -> ApplyPath {
        match edit {
            Edit::ReplaceExpr { .. } if applied.map.is_identity() => ApplyPath::ExprPatch,
            // Identity can only fail for ReplaceExpr if the program did not
            // originate from the builder's emit order; fall back safely.
            Edit::ReplaceExpr { .. } => ApplyPath::FullRebuild,
            Edit::InsertStmt { .. } => ApplyPath::SeededResolve,
            Edit::DeleteStmt { at } => {
                // Fast path only for a simple, unlabeled, non-jump victim:
                // those leave label structure and jump topology alone.
                match at.resolve(&self.prog) {
                    Some(t) => {
                        let s = self.prog.stmt(t);
                        if !s.kind.is_compound() && !s.kind.is_jump() && s.labels.is_empty() {
                            ApplyPath::SeededResolve
                        } else {
                            ApplyPath::FullRebuild
                        }
                    }
                    None => ApplyPath::FullRebuild,
                }
            }
            Edit::ToggleJump { .. } => ApplyPath::FullRebuild,
        }
    }

    /// [`ApplyPath::ExprPatch`]: ids are stable, so every artifact survives
    /// verbatim; only the PDG data edges into the edited statement change.
    fn patch_expr(&mut self, applied: Applied, new_cfg: Cfg) -> EditOutcome {
        let Applied { prog, touched, .. } = applied;
        let target = touched.expect("replace always touches a statement");
        let mut seed = std::mem::take(&mut self.seed);
        let reused = seed.reused_phases();
        match (&mut seed.pdg, &seed.reaching) {
            (Some(pdg), Some(rd)) => {
                pdg.repoint_data_uses(&prog, &new_cfg, rd, target);
            }
            (pdg @ Some(_), None) => {
                // A PDG without its reaching solution cannot be patched;
                // drop it and let it rebuild lazily. Unreachable through
                // this crate (forcing the PDG forces reaching), but a
                // hand-built seed could get here.
                *pdg = None;
            }
            (None, _) => {}
        }
        seed.cfg = Some(new_cfg);
        self.prog = prog;
        self.seed = seed;
        EditOutcome {
            path: ApplyPath::ExprPatch,
            dirty_stmts: 1,
            reused_phases: reused,
            touched: Some(target),
        }
    }

    /// [`ApplyPath::SeededResolve`]: rebuild the structural artifacts,
    /// warm-start the reaching-definitions fixpoint from the old solution,
    /// and derive the PDG from it.
    fn seeded_resolve(&mut self, edit: &Edit, applied: Applied, new_cfg: Cfg) -> EditOutcome {
        let Applied { prog, map, touched } = applied;
        let old_seed = std::mem::take(&mut self.seed);
        let old_cfg = old_seed.cfg.unwrap_or_else(|| Cfg::build(&self.prog));

        // The dirty variable: the definition an *insertion* added. A
        // deletion dirties nothing — removing a definition removes kills,
        // so every surviving definition's reach only grows and the old
        // solution stays a sound seed (the deleted site itself drops out
        // of the translation). Write/skip insertions define nothing.
        let dirty: Vec<Name> = match edit {
            Edit::InsertStmt { stmt, .. } => stmt
                .defined_var()
                .and_then(|v| prog.name(v))
                .into_iter()
                .collect(),
            _ => Vec::new(),
        };
        // An inserted definition kills only along paths through itself, so
        // seeding (and dependence patching) treat as dirty only the region
        // reachable from the insertion point.
        let dirty_from = match edit {
            Edit::InsertStmt { .. } => touched.map(|t| new_cfg.node(t)),
            _ => None,
        };
        let dirty_sites = prog
            .stmt_ids()
            .filter(|&s| prog.defs(s).is_some_and(|v| dirty.contains(&v)))
            .count();

        let mut reused = 0;
        let mut in_changed = None;
        let reaching = old_seed.reaching.map(|old_rd| {
            reused += 1;
            let (rd, changed) = ReachingDefs::compute_seeded_tracked(
                &prog,
                &new_cfg,
                &old_cfg,
                &old_rd,
                map.fwd(),
                &dirty,
                dirty_from,
            );
            in_changed = Some(changed);
            rd
        });
        // With a warm reaching solution in hand, the PDG's data half is
        // *patched*: only statements whose reaching facts moved are
        // repointed, everything else keeps its translated edges. The
        // splice changed the flowgraph, so postdominators and control
        // dependence are rebuilt; the tree is built once here and shared
        // between the control dependence walk and the analysis cache.
        let (pdg, pdom) = match (&reaching, old_seed.pdg) {
            (Some(rd), Some(old_pdg)) => {
                reused += 1;
                let (data, repointed) = old_pdg.data().patch_seeded(
                    &prog,
                    &new_cfg,
                    rd,
                    map.fwd(),
                    in_changed.as_ref().expect("tracked alongside reaching"),
                    &dirty,
                    dirty_from,
                );
                obs::record(|| obs::Event::Count {
                    name: "incr.data_deps_repointed",
                    value: repointed as u64,
                });
                let pdom = new_cfg.postdominators();
                let control = ControlDeps::compute_with_pdom(&prog, &new_cfg, &pdom);
                (Some(Pdg::from_parts(data, control)), Some(pdom))
            }
            _ => (None, None),
        };

        self.prog = prog;
        self.seed = AnalysisSeed {
            cfg: Some(new_cfg),
            pdom,
            lst: None, // lexical positions shifted: recompute lazily
            pdg,
            reaching,
            // The chain index embeds LST chains, so it shifted too.
            chain_index: None,
        };
        EditOutcome {
            path: ApplyPath::SeededResolve,
            dirty_stmts: 1 + dirty_sites,
            reused_phases: reused,
            touched,
        }
    }

    /// [`ApplyPath::FullRebuild`]: the counted fallback.
    fn full_rebuild(&mut self, applied: Applied, new_cfg: Cfg) -> EditOutcome {
        let dirty = applied.prog.len();
        self.prog = applied.prog;
        self.seed = AnalysisSeed {
            cfg: Some(new_cfg),
            ..AnalysisSeed::default()
        };
        EditOutcome {
            path: ApplyPath::FullRebuild,
            dirty_stmts: dirty,
            reused_phases: 0,
            touched: applied.touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{EditExpr, JumpKind, NewStmt};
    use crate::gen::random_edit;
    use jumpslice_core::{agrawal_slice, conventional_slice};
    use jumpslice_lang::{parse, print_program, StmtPath};
    use jumpslice_progen::{gen_structured, gen_unstructured, GenConfig};
    use jumpslice_testkit::Rng;

    /// Incremental-vs-scratch identity over every statement criterion, for
    /// the conventional and jump-repaired slicers.
    fn assert_matches_scratch(session: &mut EditSession) {
        let prog = session.prog().clone();
        let scratch = Analysis::new(&prog);
        session.with_analysis(|a| {
            for s in prog.stmt_ids() {
                let c = Criterion::at_stmt(s);
                assert_eq!(
                    conventional_slice(a, &c).stmts,
                    conventional_slice(&scratch, &c).stmts,
                    "conventional at {s:?} of\n{}",
                    print_program(&prog),
                );
                assert_eq!(
                    agrawal_slice(a, &c).stmts,
                    agrawal_slice(&scratch, &c).stmts,
                    "agrawal at {s:?} of\n{}",
                    print_program(&prog),
                );
            }
        });
    }

    #[test]
    fn expr_patch_reuses_everything_and_matches_scratch() {
        let p =
            parse("read(c); x = c + 1; if (x > 0) { y = x; } else { y = 2; } write(y);").unwrap();
        let mut s = EditSession::new(p);
        s.with_analysis(|a| a.warm());
        let out = s
            .apply(&Edit::ReplaceExpr {
                at: StmtPath::root(1),
                with: EditExpr::Num(5),
            })
            .unwrap();
        assert_eq!(out.path, ApplyPath::ExprPatch);
        assert_eq!(out.dirty_stmts, 1);
        assert_eq!(out.reused_phases, 4, "all four lazy artifacts survive");
        // The seeded analysis must not recompute anything.
        let stats = s.with_analysis(|a| {
            a.warm();
            a.stats()
        });
        assert_eq!(stats.reaching_defs, 0);
        assert_eq!(stats.pdg_builds, 0);
        assert_eq!(stats.pdom_builds, 0);
        assert_eq!(stats.lst_builds, 0);
        assert_matches_scratch(&mut s);
    }

    #[test]
    fn insert_and_delete_take_the_seeded_path() {
        let p = parse("x = 1; while (x < 9) { x = x + 2; } write(x);").unwrap();
        let mut s = EditSession::new(p);
        s.with_analysis(|a| a.warm());

        let out = s
            .apply(&Edit::InsertStmt {
                at: StmtPath::root(1),
                stmt: NewStmt::Assign {
                    var: "x".into(),
                    rhs: EditExpr::Num(0),
                },
            })
            .unwrap();
        assert_eq!(out.path, ApplyPath::SeededResolve);
        assert!(out.reused_phases >= 1, "reaching was warm-started");
        assert_matches_scratch(&mut s);

        // Delete the statement we just inserted.
        let out = s
            .apply(&Edit::DeleteStmt {
                at: StmtPath::root(1),
            })
            .unwrap();
        assert_eq!(out.path, ApplyPath::SeededResolve);
        assert_matches_scratch(&mut s);
        assert_eq!(s.stats().seeded_resolves, 2);
        assert_eq!(s.stats().full_rebuilds, 0);
    }

    #[test]
    fn toggle_falls_back_and_matches_scratch() {
        let p = parse("x = 1; while (x < 9) { x = x + 2; y = x; } write(y);").unwrap();
        let mut s = EditSession::new(p);
        s.with_analysis(|a| a.warm());
        let out = s
            .apply(&Edit::ToggleJump {
                at: StmtPath::root(1).child(jumpslice_lang::BlockSel::Body, 1),
                jump: JumpKind::Break,
            })
            .unwrap();
        assert_eq!(out.path, ApplyPath::FullRebuild);
        assert_eq!(out.reused_phases, 0);
        assert_eq!(s.stats().full_rebuilds, 1);
        assert_matches_scratch(&mut s);
    }

    #[test]
    fn rejected_edits_leave_the_session_untouched() {
        let p = parse("x = 1; write(x);").unwrap();
        let mut s = EditSession::new(p);
        s.with_analysis(|a| a.warm());
        let before = print_program(s.prog());

        // break outside any loop: validation failure.
        let err = s
            .apply(&Edit::ToggleJump {
                at: StmtPath::root(0),
                jump: JumpKind::Break,
            })
            .unwrap_err();
        assert!(matches!(err, EditError::Invalid(_)));
        // Unresolvable path.
        let err = s
            .apply(&Edit::DeleteStmt {
                at: StmtPath::root(9),
            })
            .unwrap_err();
        assert_eq!(err, EditError::PathNotFound);
        assert_eq!(print_program(s.prog()), before);
        assert_eq!(s.stats().rejected, 2);
        assert_eq!(s.stats().edits, 0);
        // And the session still answers correctly.
        assert_matches_scratch(&mut s);
    }

    #[test]
    fn stranding_edit_is_rejected_as_unanalyzable() {
        let p = parse("L: x = x + 1; if (x < 9) goto L; write(x);").unwrap();
        let mut s = EditSession::new(p);
        // Turning the write into `goto L` leaves no path to the exit.
        let err = s
            .apply(&Edit::ToggleJump {
                at: StmtPath::root(2),
                jump: JumpKind::Goto("L".into()),
            })
            .unwrap_err();
        assert_eq!(err, EditError::Unanalyzable);
        assert_matches_scratch(&mut s);
    }

    #[test]
    fn try_new_rejects_unanalyzable_programs_without_panicking() {
        // An infinite loop: the write can never reach the exit.
        let p = parse("L: x = x + 1; goto L; write(x);").unwrap();
        assert_eq!(
            EditSession::try_new(p).unwrap_err(),
            EditError::Unanalyzable
        );
        // And the analyzable case still opens.
        let q = parse("x = 1; write(x);").unwrap();
        assert!(EditSession::try_new(q).is_ok());
    }

    #[test]
    fn random_edit_scripts_match_scratch() {
        jumpslice_testkit::check(12, |rng| {
            let seed = rng.gen_range(0u64..500);
            let structured = rng.gen_bool(0.5);
            let cfg = GenConfig {
                jump_density: if structured { 0.0 } else { 0.25 },
                ..GenConfig::sized(seed, 20)
            };
            let p = if structured {
                gen_structured(&cfg)
            } else {
                gen_unstructured(&cfg)
            };
            let mut session = EditSession::new(p);
            let mut edit_rng = Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            for _ in 0..6 {
                let edit = random_edit(&mut edit_rng, session.prog());
                let _ = session.apply(&edit);
                assert_matches_scratch(&mut session);
            }
            assert_eq!(
                session.stats().edits + session.stats().rejected,
                6,
                "every edit accounted for"
            );
        });
    }
}
