//! Incremental edit-and-reslice sessions.
//!
//! Serving slices interactively means the expensive analyses — reaching
//! definitions, the PDG, postdominators, the LST — must survive small
//! program edits instead of being recomputed from scratch after each one.
//! This crate adds that layer on top of the per-program caching of
//! [`jumpslice_core::Analysis`]: an [`EditSession`] owns a program and its
//! warm artifacts, accepts edits from a small edit language expressed
//! against [`jumpslice_lang::StmtPath`]s, computes what each edit dirties,
//! and selectively patches or re-seeds the caches. Structure-changing
//! edits fall back to a full rebuild — explicitly, and counted, so tests
//! can assert exactly when the fast paths engaged.
//!
//! The correctness contract is blunt: **slicing through a session after
//! any sequence of edits is identical to slicing a freshly analyzed copy
//! of the edited program** — every slicer, every criterion. The
//! differential harness's `incr` mode drives random edit scripts against
//! exactly this invariant and shrinks any failing script.
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::{conventional_slice, Criterion};
//! use jumpslice_incr::{ApplyPath, Edit, EditExpr, EditSession};
//! use jumpslice_lang::{parse, StmtPath};
//!
//! let p = parse("x = 1; y = x + 1; write(y);")?;
//! let mut session = EditSession::new(p);
//!
//! // Slice once: the analysis warms up.
//! let n = session.with_analysis(|a| {
//!     conventional_slice(a, &Criterion::at_stmt(a.prog().at_line(3))).len()
//! });
//! assert_eq!(n, 3);
//!
//! // Cut the dependence on x: `y = x + 1` becomes `y = 7`.
//! let out = session.apply(&Edit::ReplaceExpr {
//!     at: StmtPath::root(1),
//!     with: EditExpr::Num(7),
//! })?;
//! assert_eq!(out.path, ApplyPath::ExprPatch); // everything reused
//!
//! let n = session.with_analysis(|a| {
//!     conventional_slice(a, &Criterion::at_stmt(a.prog().at_line(3))).len()
//! });
//! assert_eq!(n, 2); // x = 1 fell out of the slice
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod edit;
mod gen;
mod session;

pub use apply::{apply_edit, Applied, StmtMap};
pub use edit::{Edit, EditError, EditExpr, JumpKind, NewStmt};
pub use gen::random_edit;
pub use session::{ApplyPath, EditOutcome, EditSession, IncrStats};
