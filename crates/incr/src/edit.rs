//! The edit language.
//!
//! Edits are expressed against [`StmtPath`]s — structural positions — and
//! carry their payloads in a *program-independent* form: variable and
//! function names are strings, not [`jumpslice_lang::Name`] indices, so an
//! edit can be constructed without access to the target program's interner
//! and can introduce names the program has never seen.

use jumpslice_lang::{BinOp, Expr, Program, StmtPath, UnOp};
use std::fmt;

/// A program-independent expression. Mirrors [`Expr`] with interned names
/// replaced by strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditExpr {
    /// Integer literal.
    Num(i64),
    /// Variable reference, by name.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<EditExpr>),
    /// Binary operation.
    Binary(BinOp, Box<EditExpr>, Box<EditExpr>),
    /// Call to an uninterpreted pure function.
    Call(String, Vec<EditExpr>),
}

impl EditExpr {
    /// Variable reference.
    pub fn var(name: &str) -> EditExpr {
        EditExpr::Var(name.to_owned())
    }

    /// Binary operation.
    pub fn bin(op: BinOp, l: EditExpr, r: EditExpr) -> EditExpr {
        EditExpr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Detaches an expression of `p` into the program-independent form.
    pub fn from_expr(p: &Program, e: &Expr) -> EditExpr {
        match e {
            Expr::Num(n) => EditExpr::Num(*n),
            Expr::Var(v) => EditExpr::Var(p.name_str(*v).to_owned()),
            Expr::Unary(op, inner) => EditExpr::Unary(*op, Box::new(EditExpr::from_expr(p, inner))),
            Expr::Binary(op, l, r) => EditExpr::Binary(
                *op,
                Box::new(EditExpr::from_expr(p, l)),
                Box::new(EditExpr::from_expr(p, r)),
            ),
            Expr::Call(f, args) => EditExpr::Call(
                p.name_str(*f).to_owned(),
                args.iter().map(|a| EditExpr::from_expr(p, a)).collect(),
            ),
        }
    }
}

/// A simple statement an [`Edit::InsertStmt`] can introduce. Compound
/// statements and jumps are deliberately absent: insertions stay on the
/// analysis fast path, and jumps arrive through [`Edit::ToggleJump`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NewStmt {
    /// `var = rhs;`
    Assign {
        /// Variable assigned (interned on insertion, possibly fresh).
        var: String,
        /// Right-hand side.
        rhs: EditExpr,
    },
    /// `read(var);`
    Read {
        /// Variable defined.
        var: String,
    },
    /// `write(arg);`
    Write {
        /// Expression written.
        arg: EditExpr,
    },
    /// `;`
    Skip,
}

impl NewStmt {
    /// The variable this statement defines, if any — the edit's dirty
    /// variable for the seeded reaching-definitions re-solve.
    pub fn defined_var(&self) -> Option<&str> {
        match self {
            NewStmt::Assign { var, .. } | NewStmt::Read { var } => Some(var),
            NewStmt::Write { .. } | NewStmt::Skip => None,
        }
    }
}

/// The jump statement a [`Edit::ToggleJump`] turns its target into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JumpKind {
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;`
    Return,
    /// `goto <label>;` — the label must already exist in the program.
    Goto(String),
}

/// One edit against the session's current program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Replace the primary expression (assignment right-hand side, branch
    /// condition, written argument, switch scrutinee, or returned value) of
    /// the statement at `at`.
    ReplaceExpr {
        /// The statement whose expression is replaced.
        at: StmtPath,
        /// The replacement expression.
        with: EditExpr,
    },
    /// Insert a simple statement at a slot: `at` resolves as an insertion
    /// position, so its final index may equal the block length (append).
    InsertStmt {
        /// The insertion slot.
        at: StmtPath,
        /// The statement to insert.
        stmt: NewStmt,
    },
    /// Delete the statement at `at` (for a compound statement, the whole
    /// subtree).
    DeleteStmt {
        /// The statement to delete.
        at: StmtPath,
    },
    /// Flip the jump-ness of the statement at `at`: a jump statement
    /// becomes `;` (keeping its labels), while a simple non-jump statement
    /// becomes the given jump. Compound statements cannot be toggled.
    ToggleJump {
        /// The statement to toggle.
        at: StmtPath,
        /// The jump to install when the target is not already a jump.
        jump: JumpKind,
    },
}

impl Edit {
    /// The path the edit operates on.
    pub fn path(&self) -> &StmtPath {
        match self {
            Edit::ReplaceExpr { at, .. }
            | Edit::InsertStmt { at, .. }
            | Edit::DeleteStmt { at }
            | Edit::ToggleJump { at, .. } => at,
        }
    }
}

/// Why an edit was rejected. A rejected edit leaves the session exactly as
/// it was — no partial state is ever kept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The path does not resolve in the current program.
    PathNotFound,
    /// `ReplaceExpr` targeted a statement with no primary expression
    /// (`read`, `;`, `goto`, `break`, `continue`, or a bare `return`).
    NoExpression,
    /// `ToggleJump` targeted a compound statement.
    NotToggleable,
    /// The edited program failed semantic validation (undefined label,
    /// `break`/`continue` outside a loop, …).
    Invalid(String),
    /// The edited program has statements that cannot reach the exit, so
    /// postdominators — and every slicer — are undefined for it.
    Unanalyzable,
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::PathNotFound => write!(f, "edit path does not resolve"),
            EditError::NoExpression => write!(f, "target statement has no primary expression"),
            EditError::NotToggleable => write!(f, "cannot toggle a compound statement"),
            EditError::Invalid(msg) => write!(f, "edited program is invalid: {msg}"),
            EditError::Unanalyzable => {
                write!(
                    f,
                    "edited program has statements that cannot reach the exit"
                )
            }
        }
    }
}

impl std::error::Error for EditError {}
