//! Applying one [`Edit`] to a [`Program`].
//!
//! The language's programs are immutable value types, so an edit is applied
//! by rebuilding through [`ProgramBuilder`], walking the old program and
//! diverging only at the edit site. The walk records which new arena id
//! each old statement was re-emitted as — the [`StmtMap`] every downstream
//! analysis translation keys off.
//!
//! Two invariants make artifact reuse possible:
//!
//! * **Name stability** — every old name is re-interned first, in interning
//!   order, so a surviving statement's [`jumpslice_lang::Name`]s mean the
//!   same thing in the new program (new names from the edit append after).
//! * **Emit-order ids** — the builder assigns arena ids in push order, and
//!   the walk re-emits in the old build order, so an edit that deletes or
//!   inserts nothing (an expression replacement) reproduces every old id
//!   exactly; the recorded map comes back as the identity.

use crate::edit::{Edit, EditError, EditExpr, JumpKind, NewStmt};
use jumpslice_lang::{BlockSel, CaseGuard, Expr, Program, ProgramBuilder, StmtId, StmtKind};

/// Old-arena to new-arena statement correspondence recorded while applying
/// an edit. `None` means the old statement (or an ancestor) was deleted.
#[derive(Clone, Debug)]
pub struct StmtMap {
    fwd: Vec<Option<StmtId>>,
    new_len: usize,
}

impl StmtMap {
    /// The forward map, indexed by old arena index.
    pub fn fwd(&self) -> &[Option<StmtId>] {
        &self.fwd
    }

    /// The new id of an old statement, or `None` if it was deleted.
    pub fn get(&self, old: StmtId) -> Option<StmtId> {
        self.fwd.get(old.index()).copied().flatten()
    }

    /// Whether every old statement kept its exact id and no statement was
    /// added — the precondition for reusing id-addressed artifacts as-is.
    pub fn is_identity(&self) -> bool {
        self.new_len == self.fwd.len()
            && self
                .fwd
                .iter()
                .enumerate()
                .all(|(i, &n)| n == Some(StmtId::from_index(i)))
    }
}

/// The result of [`apply_edit`]: the edited program, the statement map,
/// and the new id of the statement the edit produced or modified (`None`
/// for a deletion).
#[derive(Clone, Debug)]
pub struct Applied {
    /// The edited program.
    pub prog: Program,
    /// Old-to-new statement correspondence.
    pub map: StmtMap,
    /// New id of the inserted / replaced / toggled statement.
    pub touched: Option<StmtId>,
}

/// Does this statement carry a primary expression [`Edit::ReplaceExpr`]
/// can target?
pub(crate) fn has_primary_expr(kind: &StmtKind) -> bool {
    matches!(
        kind,
        StmtKind::Assign { .. }
            | StmtKind::Write { .. }
            | StmtKind::If { .. }
            | StmtKind::While { .. }
            | StmtKind::DoWhile { .. }
            | StmtKind::Switch { .. }
            | StmtKind::CondGoto { .. }
            | StmtKind::Return { value: Some(_) }
    )
}

/// Applies `edit` to `p`, returning the rebuilt program and statement map.
///
/// # Errors
///
/// Rejects the edit — without producing a program — when the path does not
/// resolve, the target cannot carry the edit, or the rebuilt program fails
/// semantic validation. The input program is never modified.
pub fn apply_edit(p: &Program, edit: &Edit) -> Result<Applied, EditError> {
    let mut target = None;
    let mut slot = None;
    match edit {
        Edit::ReplaceExpr { at, .. } => {
            let t = at.resolve(p).ok_or(EditError::PathNotFound)?;
            if !has_primary_expr(&p.stmt(t).kind) {
                return Err(EditError::NoExpression);
            }
            target = Some(t);
        }
        Edit::InsertStmt { at, .. } => {
            slot = Some(at.resolve_slot(p).ok_or(EditError::PathNotFound)?);
        }
        Edit::DeleteStmt { at } => {
            target = Some(at.resolve(p).ok_or(EditError::PathNotFound)?);
        }
        Edit::ToggleJump { at, .. } => {
            let t = at.resolve(p).ok_or(EditError::PathNotFound)?;
            if p.stmt(t).kind.is_compound() {
                return Err(EditError::NotToggleable);
            }
            target = Some(t);
        }
    }

    let mut b = ProgramBuilder::new();
    // Name stability: re-intern every old name first, in order.
    for n in p.all_names() {
        let _ = b.var(p.name_str(n));
    }
    let mut st = WalkState {
        p,
        edit,
        target,
        slot,
        fwd: vec![None; p.len()],
        touched: None,
    };
    emit_block(&mut st, &mut b, None, BlockSel::Body, p.body());
    let WalkState { fwd, touched, .. } = st;
    let prog = b.build().map_err(|e| EditError::Invalid(e.to_string()))?;
    let new_len = prog.len();
    Ok(Applied {
        prog,
        map: StmtMap { fwd, new_len },
        touched,
    })
}

struct WalkState<'a> {
    p: &'a Program,
    edit: &'a Edit,
    /// Resolved target of a replace / delete / toggle, in the old arena.
    target: Option<StmtId>,
    /// Resolved insertion slot: (owning old statement, block, index).
    slot: Option<(Option<StmtId>, BlockSel, usize)>,
    fwd: Vec<Option<StmtId>>,
    touched: Option<StmtId>,
}

/// Re-interns an [`EditExpr`] into the program under construction.
fn emit_edit_expr(b: &mut ProgramBuilder, e: &EditExpr) -> Expr {
    match e {
        EditExpr::Num(n) => Expr::Num(*n),
        EditExpr::Var(v) => b.var(v),
        EditExpr::Unary(op, inner) => Expr::un(*op, emit_edit_expr(b, inner)),
        EditExpr::Binary(op, l, r) => {
            let l = emit_edit_expr(b, l);
            let r = emit_edit_expr(b, r);
            Expr::bin(*op, l, r)
        }
        EditExpr::Call(f, args) => {
            let args: Vec<Expr> = args.iter().map(|a| emit_edit_expr(b, a)).collect();
            b.call(f, args)
        }
    }
}

fn emit_new_stmt(b: &mut ProgramBuilder, s: &NewStmt) -> StmtId {
    match s {
        NewStmt::Assign { var, rhs } => {
            let rhs = emit_edit_expr(b, rhs);
            b.assign(var, rhs)
        }
        NewStmt::Read { var } => b.read(var),
        NewStmt::Write { arg } => {
            let arg = emit_edit_expr(b, arg);
            b.write(arg)
        }
        NewStmt::Skip => b.skip(),
    }
}

fn emit_block(
    st: &mut WalkState<'_>,
    b: &mut ProgramBuilder,
    owner: Option<StmtId>,
    sel: BlockSel,
    block: &[StmtId],
) {
    let insert_at = match st.slot {
        Some((o, s, idx)) if o == owner && s == sel => Some(idx),
        _ => None,
    };
    for (i, &s) in block.iter().enumerate() {
        if insert_at == Some(i) {
            if let Edit::InsertStmt { stmt, .. } = st.edit {
                st.touched = Some(emit_new_stmt(b, stmt));
            }
        }
        if matches!(st.edit, Edit::DeleteStmt { .. }) && st.target == Some(s) {
            continue; // the whole subtree stays unmapped
        }
        emit_stmt(st, b, s);
    }
    if insert_at == Some(block.len()) {
        if let Edit::InsertStmt { stmt, .. } = st.edit {
            st.touched = Some(emit_new_stmt(b, stmt));
        }
    }
}

fn emit_stmt(st: &mut WalkState<'_>, b: &mut ProgramBuilder, s: StmtId) {
    let p = st.p;
    let edit = st.edit;
    for &l in &p.stmt(s).labels {
        b.label(p.label_str(l));
    }

    // Toggled statement: swap the kind, keep the labels.
    if st.target == Some(s) {
        if let Edit::ToggleJump { jump, .. } = st.edit {
            let id = if p.stmt(s).kind.is_jump() {
                b.skip()
            } else {
                match jump {
                    JumpKind::Break => b.break_(),
                    JumpKind::Continue => b.continue_(),
                    JumpKind::Return => b.ret(None),
                    JumpKind::Goto(label) => b.goto(label),
                }
            };
            st.fwd[s.index()] = Some(id);
            st.touched = Some(id);
            return;
        }
    }

    let replacing = match edit {
        Edit::ReplaceExpr { with, .. } if st.target == Some(s) => Some(with),
        _ => None,
    };
    // The primary expression the rebuilt statement carries.
    let pick = |b: &mut ProgramBuilder, e: &Expr| match replacing {
        Some(with) => emit_edit_expr(b, with),
        None => import_expr(p, b, e),
    };

    let id = match &p.stmt(s).kind {
        StmtKind::Assign { lhs, rhs } => {
            let e = pick(b, rhs);
            b.assign(p.name_str(*lhs), e)
        }
        StmtKind::Read { var } => b.read(p.name_str(*var)),
        StmtKind::Write { arg } => {
            let e = pick(b, arg);
            b.write(e)
        }
        StmtKind::Skip => b.skip(),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = pick(b, cond);
            b.if_else_with(
                c,
                st,
                |st, b2| emit_block(st, b2, Some(s), BlockSel::Then, then_branch),
                |st, b2| emit_block(st, b2, Some(s), BlockSel::Else, else_branch),
            )
        }
        StmtKind::While { cond, body } => {
            let c = pick(b, cond);
            b.while_(c, |b2| emit_block(st, b2, Some(s), BlockSel::Body, body))
        }
        StmtKind::DoWhile { body, cond } => {
            let c = pick(b, cond);
            b.do_while(|b2| emit_block(st, b2, Some(s), BlockSel::Body, body), c)
        }
        StmtKind::Switch { scrutinee, arms } => {
            let e = pick(b, scrutinee);
            b.switch(e, |sw| {
                for (k, arm) in arms.iter().enumerate() {
                    let guards: Vec<CaseGuard> = arm.guards.clone();
                    sw.arm(&guards, |b2| {
                        emit_block(st, b2, Some(s), BlockSel::Arm(k), &arm.body)
                    });
                }
            })
        }
        StmtKind::Goto { target } => b.goto(p.label_str(*target)),
        StmtKind::CondGoto { cond, target } => {
            let label = p.label_str(*target).to_owned();
            let c = pick(b, cond);
            b.cond_goto(c, &label)
        }
        StmtKind::Break => b.break_(),
        StmtKind::Continue => b.continue_(),
        StmtKind::Return { value } => {
            let v = value.as_ref().map(|e| pick(b, e));
            b.ret(v)
        }
    };
    st.fwd[s.index()] = Some(id);
    if st.target == Some(s) {
        st.touched = Some(id);
    }
}

/// Re-interns an expression of `p` into the builder (names are stable by
/// pre-interning, but re-interning keeps this correct even for detached
/// expressions).
fn import_expr(p: &Program, b: &mut ProgramBuilder, e: &Expr) -> Expr {
    match e {
        Expr::Num(n) => Expr::Num(*n),
        Expr::Var(v) => b.var(p.name_str(*v)),
        Expr::Unary(op, inner) => Expr::un(*op, import_expr(p, b, inner)),
        Expr::Binary(op, l, r) => {
            let l = import_expr(p, b, l);
            let r = import_expr(p, b, r);
            Expr::bin(*op, l, r)
        }
        Expr::Call(f, args) => {
            let args: Vec<Expr> = args.iter().map(|a| import_expr(p, b, a)).collect();
            b.call(p.name_str(*f), args)
        }
    }
}
