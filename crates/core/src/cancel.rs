//! Cooperative deadlines for long-running slicing work.
//!
//! A serving layer cannot afford a pathological program wedging a worker:
//! the Figure-7 fixpoint is worst-case quadratic in jump count, and a
//! hostile request must not stall the queue behind it. The mechanism here
//! is deliberately minimal — a **thread-local deadline** plus explicit
//! [`checkpoint`] calls at the natural round boundaries of the fixpoint
//! loops. When the deadline passes, the checkpoint panics with the fixed
//! [`CANCELLED`] payload; the batch engine's existing panic-attribution
//! net (`BatchSlicer::try_slice_all`) catches it and the caller classifies
//! it with [`is_cancelled`], distinguishing a blown deadline (degrade to a
//! cheaper, sound slicer) from a genuine bug (report it).
//!
//! With no deadline installed — the default everywhere outside the serve
//! daemon — a checkpoint is one thread-local read and a branch; the clock
//! is only consulted while a [`DeadlineGuard`] is live, so the slicers pay
//! nothing for the capability.
//!
//! For *deterministic* expiry — fault injection that must fire on the same
//! checkpoint on every run regardless of machine speed — there is a second,
//! clock-free trigger: [`fuel`] installs a countdown of checkpoint visits,
//! and the visit that exhausts it panics with the same [`CANCELLED`]
//! sentinel. Wall-clock deadlines express "this request has 50ms"; fuel
//! expresses "this request dies at exactly its 37th checkpoint", which is
//! what a replayable chaos schedule needs.
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::cancel;
//! use std::time::{Duration, Instant};
//!
//! // Already-expired deadline: the next checkpoint fires.
//! let caught = std::panic::catch_unwind(|| {
//!     let _g = cancel::deadline(Instant::now());
//!     cancel::checkpoint();
//! })
//! .unwrap_err();
//! let msg = caught.downcast_ref::<&str>().copied().unwrap_or_default();
//! assert!(cancel::is_cancelled(msg));
//!
//! // Guard dropped (even by the unwind above): checkpoints are free again.
//! cancel::checkpoint();
//! ```

use std::cell::Cell;
use std::time::Instant;

/// The panic payload a fired [`checkpoint`] unwinds with. A `&'static str`,
/// so it survives the batch engine's `panic_message` rendering verbatim and
/// [`is_cancelled`] can classify it at the request boundary.
pub const CANCELLED: &str = "jumpslice: deadline exceeded";

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    static FUEL: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Restores the previously installed deadline (usually none) when dropped,
/// including during the unwind a fired checkpoint starts — so a worker
/// thread that catches the cancellation panic is clean for its next
/// request.
#[must_use = "dropping the guard immediately uninstalls the deadline"]
pub struct DeadlineGuard {
    previous: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.previous));
    }
}

/// Installs `deadline` on the current thread for the guard's lifetime.
/// Nested guards stack: the innermost deadline wins until its guard drops.
pub fn deadline(deadline: Instant) -> DeadlineGuard {
    let previous = DEADLINE.with(|d| d.replace(Some(deadline)));
    DeadlineGuard { previous }
}

/// Whether a deadline is installed on this thread.
pub fn active() -> bool {
    DEADLINE.with(|d| d.get().is_some())
}

/// Restores the previously installed checkpoint fuel when dropped,
/// mirroring [`DeadlineGuard`] — including during the unwind the
/// exhausted checkpoint starts.
#[must_use = "dropping the guard immediately uninstalls the fuel"]
pub struct FuelGuard {
    previous: Option<u64>,
}

impl Drop for FuelGuard {
    fn drop(&mut self) {
        FUEL.with(|f| f.set(self.previous));
    }
}

/// Installs a checkpoint-count budget on the current thread for the
/// guard's lifetime: each [`checkpoint`] visit consumes one unit, and the
/// visit that finds the tank empty panics with [`CANCELLED`]. `fuel(0)`
/// therefore fires on the very next checkpoint. Entirely clock-free, so a
/// cancellation injected this way lands on the same statement of the same
/// fixpoint round on every machine and every run.
pub fn fuel(checkpoints: u64) -> FuelGuard {
    let previous = FUEL.with(|f| f.replace(Some(checkpoints)));
    FuelGuard { previous }
}

/// Whether checkpoint fuel is installed on this thread.
pub fn fuel_active() -> bool {
    FUEL.with(|f| f.get().is_some())
}

/// Panics with [`CANCELLED`] if this thread's deadline has passed or its
/// checkpoint fuel is exhausted. The slicing kernels call this at every
/// fixpoint round boundary and worklist drain step; with neither trigger
/// installed it is two thread-local reads and branches.
#[inline]
pub fn checkpoint() {
    if let Some(left) = FUEL.with(|f| f.get()) {
        if left == 0 {
            std::panic::panic_any(CANCELLED);
        }
        FUEL.with(|f| f.set(Some(left - 1)));
    }
    if let Some(d) = DEADLINE.with(|d| d.get()) {
        if Instant::now() >= d {
            // The payload is the fixed sentinel so `is_cancelled` can
            // classify the unwind wherever it is caught.
            std::panic::panic_any(CANCELLED);
        }
    }
}

/// Whether a caught panic message is the cooperative-cancellation sentinel
/// (as opposed to a genuine slicer bug).
pub fn is_cancelled(message: &str) -> bool {
    message == CANCELLED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn checkpoint_is_inert_without_a_deadline() {
        assert!(!active());
        checkpoint(); // must not panic
    }

    #[test]
    fn expired_deadline_fires_and_guard_restores() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g = deadline(Instant::now());
            assert!(active());
            checkpoint();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(is_cancelled(msg), "payload is the sentinel: {msg}");
        assert!(!active(), "guard uninstalled during unwind");
        checkpoint();
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let _g = deadline(Instant::now() + Duration::from_secs(3600));
        checkpoint();
    }

    #[test]
    fn guards_nest_and_restore_the_outer_deadline() {
        let far = Instant::now() + Duration::from_secs(3600);
        let g1 = deadline(far);
        {
            let _g2 = deadline(Instant::now() + Duration::from_secs(1800));
            assert!(active());
        }
        assert!(active(), "outer deadline restored");
        checkpoint();
        drop(g1);
        assert!(!active());
    }

    /// Fuel fires on exactly the (n+1)-th checkpoint, every time — the
    /// determinism the chaos scheduler depends on.
    #[test]
    fn fuel_exhausts_on_a_fixed_checkpoint_and_guard_restores() {
        for budget in [0u64, 1, 5] {
            let mut survived = 0u64;
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _g = fuel(budget);
                loop {
                    checkpoint();
                    survived += 1;
                }
            }))
            .unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(is_cancelled(msg), "payload is the sentinel: {msg}");
            assert_eq!(survived, budget, "fires on checkpoint {budget}");
            assert!(!fuel_active(), "guard uninstalled during unwind");
        }
        checkpoint();
    }

    #[test]
    fn fuel_guards_nest_and_restore() {
        let g1 = fuel(100);
        {
            let _g2 = fuel(50);
            assert!(fuel_active());
            checkpoint();
        }
        assert!(fuel_active(), "outer fuel restored");
        drop(g1);
        assert!(!fuel_active());
        checkpoint();
    }

    #[test]
    fn sentinel_classification_rejects_other_messages() {
        assert!(is_cancelled(CANCELLED));
        assert!(!is_cancelled("boom"));
        assert!(!is_cancelled(""));
    }
}
