//! The result type shared by every slicing algorithm.

use jumpslice_dataflow::StmtSet;
use jumpslice_lang::{Label, Program, StmtId};

/// A point a tree walk can land on: a statement, or the program exit.
///
/// "Nearest postdominator in the slice" and "nearest lexical successor in
/// the slice" both bottom out at the exit node, which is implicitly part of
/// every slice; `None` encodes it.
pub type SlicePoint = Option<StmtId>;

/// The outcome of a slicing algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Slice {
    /// The statements included in the slice, as a dense bitset. Iteration
    /// is in ascending statement-id order (= lexical order), so everything
    /// downstream of the old sorted-`BTreeSet` representation — `lines`,
    /// `render`, the figure tests — sees identical output.
    pub stmts: StmtSet,
    /// Labels whose original carrier fell out of the slice, re-associated
    /// with their target's nearest postdominator in the slice (`None` = the
    /// program exit) — the final step of the paper's Figure 7.
    pub moved_labels: Vec<(Label, SlicePoint)>,
    /// Number of *productive* postdominator-tree traversals (traversals
    /// that added at least one jump). The paper's Figures 3/8 need 1,
    /// Figure 10 needs 2; algorithms without a traversal report 0.
    pub traversals: usize,
}

impl Slice {
    /// Wraps a bare statement set.
    pub fn from_stmts(stmts: StmtSet) -> Slice {
        Slice {
            stmts,
            moved_labels: Vec::new(),
            traversals: 0,
        }
    }

    /// Whether `s` is in the slice.
    pub fn contains(&self, s: StmtId) -> bool {
        self.stmts.contains(s)
    }

    /// Number of statements in the slice.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Paper-style line numbers of the slice statements, sorted — the format
    /// used throughout the tests and the figure harness.
    pub fn lines(&self, prog: &Program) -> Vec<usize> {
        let mut lines: Vec<usize> = self.stmts.iter().map(|s| prog.line_of(s)).collect();
        lines.sort_unstable();
        lines
    }

    /// Renders the residual program with paper-style numbering and
    /// re-associated labels.
    pub fn render(&self, prog: &Program) -> String {
        jumpslice_lang::print_slice(prog, &|s| self.contains(s), &self.moved_labels)
    }

    /// Whether `other` includes every statement of `self`.
    pub fn subset_of(&self, other: &Slice) -> bool {
        self.stmts.is_subset(&other.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn lines_are_sorted_lexically() {
        let p = parse("a = 1; b = 2; c = 3;").unwrap();
        let mut set = StmtSet::with_capacity(p.len());
        set.insert(p.at_line(3));
        set.insert(p.at_line(1));
        let s = Slice::from_stmts(set);
        assert_eq!(s.lines(&p), vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(p.at_line(1)));
        assert!(!s.contains(p.at_line(2)));
    }

    #[test]
    fn subset_relation() {
        let p = parse("a = 1; b = 2;").unwrap();
        let small = Slice::from_stmts([p.at_line(1)].into_iter().collect());
        let big = Slice::from_stmts([p.at_line(1), p.at_line(2)].into_iter().collect());
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
    }

    #[test]
    fn render_skips_excluded() {
        let p = parse("a = 1; b = 2;").unwrap();
        let s = Slice::from_stmts([p.at_line(2)].into_iter().collect());
        let text = s.render(&p);
        assert!(text.contains("b = 2;"));
        assert!(!text.contains("a = 1;"));
    }
}
