//! Batch slicing: many criteria over one program, fanned across threads.
//!
//! Computing a whole family of slices — every `write` statement, every
//! procedure exit, a regression sweep's worth of criteria — used to mean
//! paying the program-level analyses (reaching definitions, the PDG, the
//! postdominator tree, the lexical successor tree) once *per criterion*.
//! [`Analysis`] now caches each of those lazily and is `Sync`, so a batch
//! costs one analysis plus per-criterion closure work, and the closures are
//! independent: [`BatchSlicer`] runs them on a scoped thread pool with a
//! shared immutable [`Analysis`] and an atomic work index. Each worker
//! allocates its own slice bitsets, so there is no cross-thread contention
//! beyond the work counter.
//!
//! Results come back in criterion order and are bit-for-bit identical to a
//! sequential loop (each slicer is a pure function of the analysis and its
//! criterion) — the property tests in `tests/equivalence.rs` pin this.
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::{agrawal_slice, corpus, Analysis, BatchSlicer, Criterion};
//! let p = corpus::fig3();
//! let a = Analysis::new(&p);
//! let batch = BatchSlicer::new(&a);
//! let criteria: Vec<Criterion> =
//!     p.stmt_ids().map(Criterion::at_stmt).collect();
//! let slices = batch.slice_all(agrawal_slice, &criteria);
//! assert_eq!(slices.len(), p.len());
//! ```

use crate::{Analysis, Criterion, Slice};
use jumpslice_lang::{StmtId, StmtKind};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A slicing algorithm usable in a batch: any of the workspace's slicers
/// (`conventional_slice`, `agrawal_slice`, `structured_slice`,
/// `conservative_slice`, the `baselines`) has this shape.
pub type SliceFn = fn(&Analysis<'_>, &Criterion) -> Slice;

/// Fans one slicing algorithm across many criteria on worker threads.
///
/// The underlying [`Analysis`] is shared immutably: it is warmed (all lazy
/// artifacts forced) before the fan-out, so workers only ever read it.
#[derive(Clone, Copy, Debug)]
pub struct BatchSlicer<'a, 'p> {
    analysis: &'a Analysis<'p>,
    threads: usize,
}

impl<'a, 'p> BatchSlicer<'a, 'p> {
    /// A batch slicer over `analysis` using the machine's available
    /// parallelism (at least one thread).
    pub fn new(analysis: &'a Analysis<'p>) -> BatchSlicer<'a, 'p> {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchSlicer { analysis, threads }
    }

    /// Overrides the worker-thread count (`0` is clamped to `1`). One
    /// thread means a plain sequential loop on the caller's thread — the
    /// baseline the benches compare against.
    pub fn with_threads(self, threads: usize) -> BatchSlicer<'a, 'p> {
        BatchSlicer {
            threads: threads.max(1),
            ..self
        }
    }

    /// The shared analysis.
    pub fn analysis(&self) -> &'a Analysis<'p> {
        self.analysis
    }

    /// Slices every criterion with `algo`; `slices[i]` corresponds to
    /// `criteria[i]`. Identical to mapping `algo` sequentially, modulo
    /// wall-clock time.
    pub fn slice_all(&self, algo: SliceFn, criteria: &[Criterion]) -> Vec<Slice> {
        let a = self.analysis;
        let n = criteria.len();
        let threads = self.threads.min(n);
        if threads <= 1 {
            return criteria.iter().map(|c| algo(a, c)).collect();
        }
        // Force every lazy artifact up front so workers never race to
        // initialize one (OnceLock would serialize them on first touch).
        a.warm();

        let next = AtomicUsize::new(0);
        let worker = || {
            let mut local: Vec<(usize, Slice)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((i, algo(a, &criteria[i])));
            }
            local
        };
        let finished: Vec<Vec<(usize, Slice)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });

        let mut out: Vec<Option<Slice>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, slice) in finished.into_iter().flatten() {
            out[i] = Some(slice);
        }
        out.into_iter()
            .map(|s| s.expect("every criterion sliced exactly once"))
            .collect()
    }

    /// Slices at every reachable `write` statement — the criterion family
    /// the paper's experiments (and this workspace's benches) sweep.
    /// Returns `(write_stmt, slice)` pairs in lexical order.
    pub fn slice_all_writes(&self, algo: SliceFn) -> Vec<(StmtId, Slice)> {
        let p = self.analysis.prog();
        let writes: Vec<StmtId> = p
            .stmt_ids()
            .filter(|&s| {
                matches!(p.stmt(s).kind, StmtKind::Write { .. }) && self.analysis.is_live(s)
            })
            .collect();
        let criteria: Vec<Criterion> = writes.iter().copied().map(Criterion::at_stmt).collect();
        let slices = self.slice_all(algo, &criteria);
        writes.into_iter().zip(slices).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, conventional_slice, corpus};

    #[test]
    fn batch_matches_sequential() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let sequential: Vec<Slice> = criteria.iter().map(|c| agrawal_slice(&a, c)).collect();
        let batch = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        assert_eq!(batch, sequential);
    }

    #[test]
    fn one_thread_is_the_sequential_loop() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let one = BatchSlicer::new(&a)
            .with_threads(1)
            .slice_all(conventional_slice, &criteria);
        let many = BatchSlicer::new(&a)
            .with_threads(8)
            .slice_all(conventional_slice, &criteria);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_batch_is_empty() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        assert!(BatchSlicer::new(&a)
            .slice_all(agrawal_slice, &[])
            .is_empty());
    }

    #[test]
    fn write_sweep_hits_every_live_write() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let pairs = BatchSlicer::new(&a).slice_all_writes(agrawal_slice);
        assert!(!pairs.is_empty());
        for (w, s) in &pairs {
            assert!(s.contains(*w), "slice at a write contains the write");
        }
    }

    #[test]
    fn batch_shares_one_analysis() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let _ = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        let stats = a.stats();
        assert_eq!(
            stats.reaching_defs, 1,
            "one ReachingDefs for the whole batch"
        );
        assert_eq!(stats.pdg_builds, 1, "one PDG for the whole batch");
    }
}
