//! Batch slicing: many criteria over one program, fanned across threads.
//!
//! Computing a whole family of slices — every `write` statement, every
//! procedure exit, a regression sweep's worth of criteria — used to mean
//! paying the program-level analyses (reaching definitions, the PDG, the
//! postdominator tree, the lexical successor tree) once *per criterion*.
//! [`Analysis`] now caches each of those lazily and is `Sync`, so a batch
//! costs one analysis plus per-criterion closure work, and the closures are
//! independent: [`BatchSlicer`] runs them on a scoped thread pool with a
//! shared immutable [`Analysis`] and an atomic work index. Each worker
//! allocates its own slice bitsets, so there is no cross-thread contention
//! beyond the work counter.
//!
//! Results come back in criterion order and are bit-for-bit identical to a
//! sequential loop (each slicer is a pure function of the analysis and its
//! criterion) — the property tests in `tests/equivalence.rs` pin this.
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::{agrawal_slice, corpus, Analysis, BatchSlicer, Criterion};
//! let p = corpus::fig3();
//! let a = Analysis::new(&p);
//! let batch = BatchSlicer::new(&a);
//! let criteria: Vec<Criterion> =
//!     p.stmt_ids().map(Criterion::at_stmt).collect();
//! let slices = batch.slice_all(agrawal_slice, &criteria);
//! assert_eq!(slices.len(), p.len());
//! ```

use crate::{Analysis, Criterion, Slice};
use jumpslice_lang::{StmtId, StmtKind};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A slicer panic caught mid-batch, attributed to the criterion whose
/// closure died. Differential testing needs the attribution: a raw scoped
/// -thread panic says nothing about *which* of a thousand criteria killed
/// the worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchPanic {
    /// Index of the offending criterion in the batch's `criteria` slice.
    pub index: usize,
    /// The criterion itself.
    pub criterion: Criterion,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case: `panic!`, `assert!`, `expect` all produce one).
    pub message: String,
}

impl std::fmt::Display for BatchPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slicer panicked on criterion #{} ({:?}): {}",
            self.index, self.criterion, self.message
        )
    }
}

impl std::error::Error for BatchPanic {}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A slicing algorithm usable in a batch: any of the workspace's slicers
/// (`conventional_slice`, `agrawal_slice`, `structured_slice`,
/// `conservative_slice`, the `baselines`) has this shape.
pub type SliceFn = fn(&Analysis<'_>, &Criterion) -> Slice;

/// Fans one slicing algorithm across many criteria on worker threads.
///
/// The underlying [`Analysis`] is shared immutably: it is warmed (all lazy
/// artifacts forced) before the fan-out, so workers only ever read it.
#[derive(Clone, Copy, Debug)]
pub struct BatchSlicer<'a, 'p> {
    analysis: &'a Analysis<'p>,
    threads: usize,
}

impl<'a, 'p> BatchSlicer<'a, 'p> {
    /// A batch slicer over `analysis` using the machine's available
    /// parallelism (at least one thread).
    pub fn new(analysis: &'a Analysis<'p>) -> BatchSlicer<'a, 'p> {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchSlicer { analysis, threads }
    }

    /// Overrides the worker-thread count (`0` is clamped to `1`). One
    /// thread means a plain sequential loop on the caller's thread — the
    /// baseline the benches compare against.
    pub fn with_threads(self, threads: usize) -> BatchSlicer<'a, 'p> {
        BatchSlicer {
            threads: threads.max(1),
            ..self
        }
    }

    /// The shared analysis.
    pub fn analysis(&self) -> &'a Analysis<'p> {
        self.analysis
    }

    /// Slices every criterion with `algo`; `slices[i]` corresponds to
    /// `criteria[i]`. Identical to mapping `algo` sequentially, modulo
    /// wall-clock time.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `algo`, prefixed with the offending
    /// criterion (see [`try_slice_all`](BatchSlicer::try_slice_all) for the
    /// non-panicking form).
    pub fn slice_all(&self, algo: SliceFn, criteria: &[Criterion]) -> Vec<Slice> {
        self.try_slice_all(algo, criteria)
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// Like [`slice_all`](BatchSlicer::slice_all), but a panicking slicer
    /// produces an attributed [`BatchPanic`] instead of tearing down the
    /// scoped thread pool with an anonymous worker panic. When several
    /// criteria panic in one batch, the one with the lowest index is
    /// reported; the remaining workers drain the queue normally.
    pub fn try_slice_all(
        &self,
        algo: SliceFn,
        criteria: &[Criterion],
    ) -> Result<Vec<Slice>, BatchPanic> {
        let a = self.analysis;
        let n = criteria.len();
        let threads = self.threads.min(n);

        let slice_one = |i: usize| -> Result<Slice, BatchPanic> {
            catch_unwind(AssertUnwindSafe(|| algo(a, &criteria[i]))).map_err(|payload| BatchPanic {
                index: i,
                criterion: criteria[i].clone(),
                message: panic_message(payload),
            })
        };

        if threads <= 1 {
            return (0..n).map(slice_one).collect();
        }
        // Force every lazy artifact up front so workers never race to
        // initialize one (OnceLock would serialize them on first touch).
        a.warm();

        let next = AtomicUsize::new(0);
        let worker = || {
            let mut local: Vec<(usize, Result<Slice, BatchPanic>)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((i, slice_one(i)));
            }
            local
        };
        let finished: Vec<Vec<(usize, Result<Slice, BatchPanic>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker itself never panics"))
                .collect()
        });

        let mut out: Vec<Option<Slice>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut first_panic: Option<BatchPanic> = None;
        for (i, result) in finished.into_iter().flatten() {
            match result {
                Ok(slice) => out[i] = Some(slice),
                Err(p) => {
                    if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            return Err(p);
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every criterion sliced exactly once"))
            .collect())
    }

    /// Slices at every reachable `write` statement — the criterion family
    /// the paper's experiments (and this workspace's benches) sweep.
    /// Returns `(write_stmt, slice)` pairs in lexical order.
    pub fn slice_all_writes(&self, algo: SliceFn) -> Vec<(StmtId, Slice)> {
        let p = self.analysis.prog();
        let writes: Vec<StmtId> = p
            .stmt_ids()
            .filter(|&s| {
                matches!(p.stmt(s).kind, StmtKind::Write { .. }) && self.analysis.is_live(s)
            })
            .collect();
        let criteria: Vec<Criterion> = writes.iter().copied().map(Criterion::at_stmt).collect();
        let slices = self.slice_all(algo, &criteria);
        writes.into_iter().zip(slices).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, conventional_slice, corpus};

    #[test]
    fn batch_matches_sequential() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let sequential: Vec<Slice> = criteria.iter().map(|c| agrawal_slice(&a, c)).collect();
        let batch = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        assert_eq!(batch, sequential);
    }

    #[test]
    fn one_thread_is_the_sequential_loop() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let one = BatchSlicer::new(&a)
            .with_threads(1)
            .slice_all(conventional_slice, &criteria);
        let many = BatchSlicer::new(&a)
            .with_threads(8)
            .slice_all(conventional_slice, &criteria);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_batch_is_empty() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        assert!(BatchSlicer::new(&a)
            .slice_all(agrawal_slice, &[])
            .is_empty());
    }

    #[test]
    fn write_sweep_hits_every_live_write() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let pairs = BatchSlicer::new(&a).slice_all_writes(agrawal_slice);
        assert!(!pairs.is_empty());
        for (w, s) in &pairs {
            assert!(s.contains(*w), "slice at a write contains the write");
        }
    }

    #[test]
    fn panicking_slicer_is_attributed_to_its_criterion() {
        fn bomb(a: &Analysis<'_>, c: &Criterion) -> Slice {
            if c.stmt.index() == 2 {
                panic!("boom at {:?}", c.stmt);
            }
            agrawal_slice(a, c)
        }
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        for threads in [1, 4] {
            let err = BatchSlicer::new(&a)
                .with_threads(threads)
                .try_slice_all(bomb, &criteria)
                .unwrap_err();
            assert_eq!(err.index, 2, "lowest panicking index wins");
            assert_eq!(err.criterion, criteria[2]);
            assert!(err.message.contains("boom"), "{}", err.message);
            assert!(err.to_string().contains("criterion #2"), "{err}");
        }
    }

    #[test]
    fn try_slice_all_matches_slice_all_when_nothing_panics() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let ok = BatchSlicer::new(&a)
            .with_threads(4)
            .try_slice_all(agrawal_slice, &criteria)
            .unwrap();
        let plain = BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria);
        assert_eq!(ok, plain);
    }

    #[test]
    fn batch_shares_one_analysis() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let _ = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        let stats = a.stats();
        assert_eq!(
            stats.reaching_defs, 1,
            "one ReachingDefs for the whole batch"
        );
        assert_eq!(stats.pdg_builds, 1, "one PDG for the whole batch");
    }
}
