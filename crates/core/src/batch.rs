//! Batch slicing: many criteria over one program, fanned across threads.
//!
//! Computing a whole family of slices — every `write` statement, every
//! procedure exit, a regression sweep's worth of criteria — used to mean
//! paying the program-level analyses (reaching definitions, the PDG, the
//! postdominator tree, the lexical successor tree) once *per criterion*.
//! [`Analysis`] now caches each of those lazily and is `Sync`, so a batch
//! costs one analysis plus per-criterion closure work, and the closures are
//! independent: [`BatchSlicer`] runs them on a scoped thread pool with a
//! shared immutable [`Analysis`] and an atomic work index. The sparse
//! Figure-7 kernel's chain index rides the same cache: `warm()` (which the
//! pool calls before spawning workers) forces it once, and every worker
//! probes the one shared copy, while each worker's per-slice scratch
//! (worklists, delta buffers, jump ranks) lives in a thread-local pool so
//! steady-state admissions allocate nothing. Each worker allocates its own
//! slice bitsets, so there is no cross-thread contention beyond the work
//! counter.
//!
//! Results come back in criterion order and are bit-for-bit identical to a
//! sequential loop (each slicer is a pure function of the analysis and its
//! criterion) — the property tests in `tests/equivalence.rs` pin this.
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::{agrawal_slice, corpus, Analysis, BatchSlicer, Criterion};
//! let p = corpus::fig3();
//! let a = Analysis::new(&p);
//! let batch = BatchSlicer::new(&a);
//! let criteria: Vec<Criterion> =
//!     p.stmt_ids().map(Criterion::at_stmt).collect();
//! let slices = batch.slice_all(agrawal_slice, &criteria);
//! assert_eq!(slices.len(), p.len());
//! ```

use crate::{Analysis, Criterion, Slice};
use jumpslice_lang::{StmtId, StmtKind};
use jumpslice_obs as obs;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Execution statistics for **one** batch run.
///
/// A fresh snapshot is produced by every `*_stats` call: nothing accumulates
/// across runs, so two consecutive runs on one (reused, already-warm)
/// analysis each report only their own work. Workers run on scoped threads
/// whose sinks are empty, so these numbers are gathered by the coordinating
/// thread and reported through [`Event::Count`](jumpslice_obs::Event::Count)
/// events (`batch.*`) on the caller's sink.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchRunStats {
    /// Criteria sliced in this run.
    pub criteria: usize,
    /// Worker threads actually used (after clamping to the batch size;
    /// `1` means the sequential path on the caller's thread).
    pub threads: usize,
    /// Wall-clock duration of the whole run.
    pub wall_ns: u64,
    /// Summed per-worker time spent inside slicer calls.
    pub busy_ns: u64,
    /// Summed per-worker time *not* spent slicing (queue acquisition plus
    /// the idle tail after the work runs out): `wall × threads − busy`.
    pub queue_wait_ns: u64,
    /// Slices produced by each worker — the work-stealing balance.
    pub per_worker_slices: Vec<usize>,
}

impl BatchRunStats {
    /// Fraction of the run's total thread-time spent slicing (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        let total = self.wall_ns.saturating_mul(self.threads as u64);
        if total == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / total as f64
    }
}

/// A slicer panic caught mid-batch, attributed to the criterion whose
/// closure died. Differential testing needs the attribution: a raw scoped
/// -thread panic says nothing about *which* of a thousand criteria killed
/// the worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchPanic {
    /// Index of the offending criterion in the batch's `criteria` slice.
    pub index: usize,
    /// The criterion itself.
    pub criterion: Criterion,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case: `panic!`, `assert!`, `expect` all produce one).
    pub message: String,
}

impl std::fmt::Display for BatchPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slicer panicked on criterion #{} ({:?}): {}",
            self.index, self.criterion, self.message
        )
    }
}

impl std::error::Error for BatchPanic {}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A slicing algorithm usable in a batch: any of the workspace's slicers
/// (`conventional_slice`, `agrawal_slice`, `structured_slice`,
/// `conservative_slice`, the `baselines`) has this shape.
pub type SliceFn = fn(&Analysis<'_>, &Criterion) -> Slice;

/// Fans one slicing algorithm across many criteria on worker threads.
///
/// The underlying [`Analysis`] is shared immutably: it is warmed (all lazy
/// artifacts forced) before the fan-out, so workers only ever read it.
#[derive(Clone, Copy, Debug)]
pub struct BatchSlicer<'a, 'p> {
    analysis: &'a Analysis<'p>,
    threads: usize,
    /// Cooperative deadline installed on every worker for the duration of
    /// each slicer call (`None` = run to completion). Deadlines are
    /// thread-local, so the coordinating thread's own deadline would never
    /// reach the scoped workers — it must travel through the slicer.
    deadline: Option<Instant>,
    /// Clock-free cancellation trigger: each slicer call gets this many
    /// checkpoint visits before the next one fires [`crate::cancel::CANCELLED`].
    /// Travels to the workers exactly like the deadline. Fault-injection
    /// machinery uses it to blow a "deadline" on a reproducible checkpoint.
    checkpoint_fuel: Option<u64>,
}

impl<'a, 'p> BatchSlicer<'a, 'p> {
    /// A batch slicer over `analysis` using the machine's available
    /// parallelism (at least one thread).
    pub fn new(analysis: &'a Analysis<'p>) -> BatchSlicer<'a, 'p> {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchSlicer {
            analysis,
            threads,
            deadline: None,
            checkpoint_fuel: None,
        }
    }

    /// Overrides the worker-thread count (`0` is clamped to `1`). One
    /// thread means a plain sequential loop on the caller's thread — the
    /// baseline the benches compare against.
    pub fn with_threads(self, threads: usize) -> BatchSlicer<'a, 'p> {
        BatchSlicer {
            threads: threads.max(1),
            ..self
        }
    }

    /// Installs a cooperative deadline: every worker checks it at the
    /// slicers' fixpoint checkpoints and before each criterion, and a blown
    /// deadline surfaces as a [`BatchPanic`] whose message satisfies
    /// [`crate::cancel::is_cancelled`] (use
    /// [`try_slice_all`](BatchSlicer::try_slice_all) to catch it).
    pub fn with_deadline(self, deadline: Option<Instant>) -> BatchSlicer<'a, 'p> {
        BatchSlicer { deadline, ..self }
    }

    /// Installs a per-criterion checkpoint budget (see
    /// [`crate::cancel::fuel`]): any criterion whose slicer visits more
    /// than `fuel` checkpoints is cancelled, deterministically, machine
    /// speed notwithstanding. Surfaces exactly like a blown deadline — a
    /// [`BatchPanic`] classified by [`crate::cancel::is_cancelled`].
    pub fn with_checkpoint_fuel(self, fuel: Option<u64>) -> BatchSlicer<'a, 'p> {
        BatchSlicer {
            checkpoint_fuel: fuel,
            ..self
        }
    }

    /// The shared analysis.
    pub fn analysis(&self) -> &'a Analysis<'p> {
        self.analysis
    }

    /// Slices every criterion with `algo`; `slices[i]` corresponds to
    /// `criteria[i]`. Identical to mapping `algo` sequentially, modulo
    /// wall-clock time.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `algo`, prefixed with the offending
    /// criterion (see [`try_slice_all`](BatchSlicer::try_slice_all) for the
    /// non-panicking form).
    pub fn slice_all(&self, algo: SliceFn, criteria: &[Criterion]) -> Vec<Slice> {
        self.try_slice_all(algo, criteria)
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// Like [`slice_all`](BatchSlicer::slice_all), but a panicking slicer
    /// produces an attributed [`BatchPanic`] instead of tearing down the
    /// scoped thread pool with an anonymous worker panic. When several
    /// criteria panic in one batch, the one with the lowest index is
    /// reported; the remaining workers drain the queue normally.
    pub fn try_slice_all(
        &self,
        algo: SliceFn,
        criteria: &[Criterion],
    ) -> Result<Vec<Slice>, BatchPanic> {
        self.try_slice_all_stats(algo, criteria).map(|(s, _)| s)
    }

    /// [`slice_all`](BatchSlicer::slice_all) returning a per-run
    /// [`BatchRunStats`] snapshot alongside the slices.
    pub fn slice_all_stats(
        &self,
        algo: SliceFn,
        criteria: &[Criterion],
    ) -> (Vec<Slice>, BatchRunStats) {
        self.try_slice_all_stats(algo, criteria)
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// [`try_slice_all`](BatchSlicer::try_slice_all) returning a per-run
    /// [`BatchRunStats`] snapshot alongside the slices — the single
    /// implementation every other entry point delegates to.
    pub fn try_slice_all_stats(
        &self,
        algo: SliceFn,
        criteria: &[Criterion],
    ) -> Result<(Vec<Slice>, BatchRunStats), BatchPanic> {
        let a = self.analysis;
        let n = criteria.len();
        let threads = self.threads.min(n).max(1);
        let _run = obs::phase(obs::Phase::BatchRun);
        let run_start = Instant::now();

        let deadline = self.deadline;
        let checkpoint_fuel = self.checkpoint_fuel;
        let slice_one = |i: usize| -> Result<Slice, BatchPanic> {
            catch_unwind(AssertUnwindSafe(|| {
                // Install the run's deadline and fuel on whichever thread
                // executes this criterion; the guards drop (restoring
                // nothing) even when the checkpoint's panic unwinds past
                // them.
                let _g = deadline.map(crate::cancel::deadline);
                let _f = checkpoint_fuel.map(crate::cancel::fuel);
                crate::cancel::checkpoint();
                algo(a, &criteria[i])
            }))
            .map_err(|payload| BatchPanic {
                index: i,
                criterion: criteria[i].clone(),
                message: panic_message(payload),
            })
        };

        if threads <= 1 {
            let mut busy_ns = 0u64;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let t0 = Instant::now();
                let r = slice_one(i);
                busy_ns += t0.elapsed().as_nanos() as u64;
                out.push(r?);
            }
            let stats = self.finish_stats(n, 1, run_start, busy_ns, vec![n]);
            return Ok((out, stats));
        }
        // Force every lazy artifact up front so workers never race to
        // initialize one (OnceLock would serialize them on first touch).
        // The warm itself runs on the phase-DAG schedule across the same
        // thread budget, and additionally condenses the PDG so every
        // worker's closures become bitset unions.
        a.warm_parallel(threads);

        let next = AtomicUsize::new(0);
        let worker = || {
            let mut local: Vec<(usize, Result<Slice, BatchPanic>)> = Vec::new();
            let mut busy_ns = 0u64;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let t0 = Instant::now();
                let r = slice_one(i);
                busy_ns += t0.elapsed().as_nanos() as u64;
                local.push((i, r));
            }
            (local, busy_ns)
        };
        type WorkerOut = (Vec<(usize, Result<Slice, BatchPanic>)>, u64);
        let finished: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker itself never panics"))
                .collect()
        });

        let mut out: Vec<Option<Slice>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut first_panic: Option<BatchPanic> = None;
        let mut busy_ns = 0u64;
        let mut per_worker_slices = Vec::with_capacity(threads);
        for (local, worker_busy) in finished {
            busy_ns += worker_busy;
            per_worker_slices.push(local.len());
            for (i, result) in local {
                match result {
                    Ok(slice) => out[i] = Some(slice),
                    Err(p) => {
                        if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                            first_panic = Some(p);
                        }
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            return Err(p);
        }
        let stats = self.finish_stats(n, threads, run_start, busy_ns, per_worker_slices);
        Ok((
            out.into_iter()
                .map(|s| s.expect("every criterion sliced exactly once"))
                .collect(),
            stats,
        ))
    }

    /// Assembles the per-run snapshot and mirrors it onto the caller's
    /// trace sink as `batch.*` counter events.
    fn finish_stats(
        &self,
        criteria: usize,
        threads: usize,
        run_start: Instant,
        busy_ns: u64,
        per_worker_slices: Vec<usize>,
    ) -> BatchRunStats {
        let wall_ns = run_start.elapsed().as_nanos() as u64;
        let stats = BatchRunStats {
            criteria,
            threads,
            wall_ns,
            busy_ns,
            queue_wait_ns: wall_ns
                .saturating_mul(threads as u64)
                .saturating_sub(busy_ns),
            per_worker_slices,
        };
        obs::record(|| obs::Event::Count {
            name: "batch.criteria",
            value: stats.criteria as u64,
        });
        obs::record(|| obs::Event::Count {
            name: "batch.threads",
            value: stats.threads as u64,
        });
        obs::record(|| obs::Event::Count {
            name: "batch.wall_ns",
            value: stats.wall_ns,
        });
        obs::record(|| obs::Event::Count {
            name: "batch.busy_ns",
            value: stats.busy_ns,
        });
        obs::record(|| obs::Event::Count {
            name: "batch.queue_wait_ns",
            value: stats.queue_wait_ns,
        });
        stats
    }

    /// Slices at every reachable `write` statement — the criterion family
    /// the paper's experiments (and this workspace's benches) sweep.
    /// Returns `(write_stmt, slice)` pairs in lexical order.
    pub fn slice_all_writes(&self, algo: SliceFn) -> Vec<(StmtId, Slice)> {
        let p = self.analysis.prog();
        let writes: Vec<StmtId> = p
            .stmt_ids()
            .filter(|&s| {
                matches!(p.stmt(s).kind, StmtKind::Write { .. }) && self.analysis.is_live(s)
            })
            .collect();
        let criteria: Vec<Criterion> = writes.iter().copied().map(Criterion::at_stmt).collect();
        let slices = self.slice_all(algo, &criteria);
        writes.into_iter().zip(slices).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, conventional_slice, corpus};

    #[test]
    fn batch_matches_sequential() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let sequential: Vec<Slice> = criteria.iter().map(|c| agrawal_slice(&a, c)).collect();
        let batch = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        assert_eq!(batch, sequential);
    }

    #[test]
    fn one_thread_is_the_sequential_loop() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let one = BatchSlicer::new(&a)
            .with_threads(1)
            .slice_all(conventional_slice, &criteria);
        let many = BatchSlicer::new(&a)
            .with_threads(8)
            .slice_all(conventional_slice, &criteria);
        assert_eq!(one, many);
    }

    #[test]
    fn threaded_batch_builds_the_chain_index_exactly_once() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let _ = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        let _ = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        // Every worker of both runs probed the one shared index that
        // `warm()` forced up front.
        assert_eq!(a.stats().chain_index_builds, 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        assert!(BatchSlicer::new(&a)
            .slice_all(agrawal_slice, &[])
            .is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let (slices, stats) = BatchSlicer::new(&a)
            .with_threads(0)
            .slice_all_stats(agrawal_slice, &criteria);
        assert_eq!(stats.threads, 1, "with_threads(0) clamps to 1");
        assert_eq!(slices.len(), criteria.len());
    }

    #[test]
    fn more_threads_than_criteria_clamps_to_batch_size() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).take(3).collect();
        let (slices, stats) = BatchSlicer::new(&a)
            .with_threads(criteria.len() + 13)
            .slice_all_stats(agrawal_slice, &criteria);
        assert_eq!(stats.threads, criteria.len());
        assert_eq!(stats.per_worker_slices.len(), criteria.len());
        let sequential: Vec<Slice> = criteria.iter().map(|c| agrawal_slice(&a, c)).collect();
        assert_eq!(slices, sequential);
    }

    #[test]
    fn expired_deadline_surfaces_as_a_classified_cancel() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        for threads in [1, 4] {
            let err = BatchSlicer::new(&a)
                .with_threads(threads)
                .with_deadline(Some(std::time::Instant::now()))
                .try_slice_all(agrawal_slice, &criteria)
                .unwrap_err();
            assert!(
                crate::cancel::is_cancelled(&err.message),
                "expired deadline classifies as cancellation, got: {}",
                err.message
            );
            assert_eq!(err.index, 0, "the first criterion already trips it");
        }
        // The workers' thread-local deadlines died with the scoped threads
        // (and the sequential path's guard dropped): a fresh run completes.
        let again = BatchSlicer::new(&a)
            .try_slice_all(agrawal_slice, &criteria)
            .unwrap();
        assert_eq!(again.len(), criteria.len());
    }

    #[test]
    fn exhausted_fuel_surfaces_as_a_classified_cancel() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        for threads in [1, 4] {
            let err = BatchSlicer::new(&a)
                .with_threads(threads)
                .with_checkpoint_fuel(Some(0))
                .try_slice_all(agrawal_slice, &criteria)
                .unwrap_err();
            assert!(
                crate::cancel::is_cancelled(&err.message),
                "fuel exhaustion classifies as cancellation, got: {}",
                err.message
            );
            assert_eq!(err.index, 0, "zero fuel trips on the first criterion");
        }
        // Fuel guards died with their slicer calls: a fresh run completes.
        let again = BatchSlicer::new(&a)
            .try_slice_all(agrawal_slice, &criteria)
            .unwrap();
        assert_eq!(again.len(), criteria.len());
    }

    #[test]
    fn generous_fuel_changes_nothing() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let fueled = BatchSlicer::new(&a)
            .with_threads(4)
            .with_checkpoint_fuel(Some(u64::MAX))
            .slice_all(agrawal_slice, &criteria);
        let plain = BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria);
        assert_eq!(fueled, plain);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let timed = BatchSlicer::new(&a)
            .with_threads(4)
            .with_deadline(Some(far))
            .slice_all(agrawal_slice, &criteria);
        let plain = BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria);
        assert_eq!(timed, plain);
    }

    #[test]
    fn write_sweep_hits_every_live_write() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let pairs = BatchSlicer::new(&a).slice_all_writes(agrawal_slice);
        assert!(!pairs.is_empty());
        for (w, s) in &pairs {
            assert!(s.contains(*w), "slice at a write contains the write");
        }
    }

    #[test]
    fn panicking_slicer_is_attributed_to_its_criterion() {
        fn bomb(a: &Analysis<'_>, c: &Criterion) -> Slice {
            if c.stmt.index() == 2 {
                panic!("boom at {:?}", c.stmt);
            }
            agrawal_slice(a, c)
        }
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        for threads in [1, 4] {
            let err = BatchSlicer::new(&a)
                .with_threads(threads)
                .try_slice_all(bomb, &criteria)
                .unwrap_err();
            assert_eq!(err.index, 2, "lowest panicking index wins");
            assert_eq!(err.criterion, criteria[2]);
            assert!(err.message.contains("boom"), "{}", err.message);
            assert!(err.to_string().contains("criterion #2"), "{err}");
        }
    }

    #[test]
    fn try_slice_all_matches_slice_all_when_nothing_panics() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let ok = BatchSlicer::new(&a)
            .with_threads(4)
            .try_slice_all(agrawal_slice, &criteria)
            .unwrap();
        let plain = BatchSlicer::new(&a).slice_all(agrawal_slice, &criteria);
        assert_eq!(ok, plain);
    }

    #[test]
    fn stats_are_per_run_snapshots() {
        // Regression pin: stats must not accumulate across `slice_all`
        // calls on a reused (already-warm) analysis — each run reports only
        // its own criteria and timings.
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let batch = BatchSlicer::new(&a).with_threads(2);
        let all: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let (_, first) = batch.slice_all_stats(agrawal_slice, &all);
        assert_eq!(first.criteria, all.len());
        let (_, second) = batch.slice_all_stats(agrawal_slice, &all[..3]);
        assert_eq!(second.criteria, 3, "second run counts only its own work");
        assert_eq!(second.per_worker_slices.iter().sum::<usize>(), 3);
        assert!(second.wall_ns > 0);
        assert!(
            second.busy_ns <= second.wall_ns.saturating_mul(second.threads as u64),
            "busy time bounded by thread-time"
        );
        assert!(second.utilization() <= 1.0);
        let (_, empty) = batch.slice_all_stats(agrawal_slice, &[]);
        assert_eq!(empty.criteria, 0);
        assert_eq!(empty.per_worker_slices, vec![0]);
    }

    #[test]
    fn stats_thread_clamping() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let all: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let (_, seq) = BatchSlicer::new(&a)
            .with_threads(1)
            .slice_all_stats(agrawal_slice, &all);
        assert_eq!(seq.threads, 1);
        assert_eq!(seq.per_worker_slices, vec![all.len()]);
        let (_, wide) = BatchSlicer::new(&a)
            .with_threads(64)
            .slice_all_stats(agrawal_slice, &all[..2]);
        assert_eq!(wide.threads, 2, "threads clamp to the batch size");
    }

    #[test]
    fn batch_shares_one_analysis() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let criteria: Vec<Criterion> = p.stmt_ids().map(Criterion::at_stmt).collect();
        let _ = BatchSlicer::new(&a)
            .with_threads(4)
            .slice_all(agrawal_slice, &criteria);
        let stats = a.stats();
        assert_eq!(
            stats.reaching_defs, 1,
            "one ReachingDefs for the whole batch"
        );
        assert_eq!(stats.pdg_builds, 1, "one PDG for the whole batch");
    }
}
