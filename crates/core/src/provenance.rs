//! Slice provenance: why is each statement in the slice?
//!
//! [`agrawal_slice_traced`] runs the same Figure-7 implementation as
//! [`crate::agrawal_slice`] (literally the same function — see
//! `agrawal::figure7`), additionally recording, for every statement, the
//! first edge that pulled it into the slice. Following those edges yields a
//! *witness chain* from any sliced statement back to a root: the criterion,
//! a reaching definition seeded by a `vars_at` criterion, or a jump admitted
//! by the Figure-7 test (annotated with the nearest postdominator and
//! nearest lexical successor whose disagreement admitted it).
//!
//! # Examples
//!
//! ```
//! use jumpslice_core::{agrawal_slice_traced, Analysis, Criterion, Why};
//! use jumpslice_core::corpus;
//! let p = corpus::fig3();
//! let a = Analysis::new(&p);
//! let (slice, prov) = agrawal_slice_traced(&a, &Criterion::at_stmt(p.at_line(15)));
//! // The goto on line 7 was admitted by the Figure-7 test, in round 1.
//! let chain = prov.chain(p.at_line(7)).unwrap();
//! assert!(matches!(chain[0].1, Why::Jump { round: 1, .. }));
//! // Every sliced statement has a chain ending at a root.
//! for s in slice.stmts.iter() {
//!     assert!(prov.chain(s).is_some());
//! }
//! ```

use crate::{Analysis, Criterion, Slice, SlicePoint};
use jumpslice_dataflow::StmtSet;
use jumpslice_lang::{Program, StmtId};
use std::fmt::Write as _;

/// The first reason a statement entered the slice.
///
/// `Data`/`Control` point one step *toward the criterion*: the already-sliced
/// statement whose dependence pulled this one in. The other variants are
/// chain roots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Why {
    /// The criterion statement itself (an `at_stmt` criterion).
    Criterion,
    /// A reaching definition of a criterion variable (a `vars_at`
    /// criterion's seed).
    SeedDef,
    /// This statement's definition is data-depended-on by `to`.
    Data {
        /// The in-slice statement that data-depends on this one.
        to: StmtId,
    },
    /// This statement controls whether `to` executes.
    Control {
        /// The in-slice statement control dependent on this one.
        to: StmtId,
    },
    /// A jump admitted by the Figure-7 traversal test.
    Jump {
        /// 1-based fixpoint round in which the jump was admitted.
        round: u32,
        /// Its nearest postdominator in the slice at admission time
        /// (`None` = exit).
        npd: SlicePoint,
        /// Its nearest lexical successor in the slice at admission time
        /// (`None` = exit).
        nls: SlicePoint,
        /// `true` when only the do-while extension guard fired (npd and nls
        /// agreed).
        via_hazard: bool,
    },
}

impl Why {
    /// One-line human-readable description (paper-style line numbers).
    pub fn describe(&self, prog: &Program) -> String {
        let pt = |p: &SlicePoint| match p {
            Some(s) => format!("line {}", prog.line_of(*s)),
            None => "exit".to_owned(),
        };
        match self {
            Why::Criterion => "criterion statement".to_owned(),
            Why::SeedDef => "reaching definition of a criterion variable".to_owned(),
            Why::Data { to } => format!("data dependence of line {}", prog.line_of(*to)),
            Why::Control { to } => format!("control dependence of line {}", prog.line_of(*to)),
            Why::Jump {
                round,
                npd,
                nls,
                via_hazard,
            } => {
                if *via_hazard {
                    format!("jump admitted in round {round}: do-while hazard on the lexical-successor path")
                } else {
                    format!(
                        "jump admitted in round {round}: nearest postdominator in slice is {} \
                         but nearest lexical successor in slice is {}",
                        pt(npd),
                        pt(nls)
                    )
                }
            }
        }
    }
}

/// Why each statement of a slice is there; produced by
/// [`agrawal_slice_traced`].
#[derive(Clone, Debug)]
pub struct Provenance {
    criterion: Criterion,
    why: Vec<Option<Why>>,
}

impl Provenance {
    /// The criterion the traced slice was taken with respect to.
    pub fn criterion(&self) -> &Criterion {
        &self.criterion
    }

    /// Why `s` entered the slice (`None` if it is not in the slice).
    pub fn why(&self, s: StmtId) -> Option<Why> {
        self.why[s.index()]
    }

    /// The witness chain from `s` back to a root, following `Data`/`Control`
    /// edges toward the criterion. The first element is `s` itself; the last
    /// element's `Why` is a root ([`Why::Criterion`], [`Why::SeedDef`], or
    /// [`Why::Jump`]).
    pub fn chain(&self, s: StmtId) -> Option<Vec<(StmtId, Why)>> {
        let mut out = Vec::new();
        let mut cur = s;
        loop {
            let why = self.why[cur.index()]?;
            out.push((cur, why));
            match why {
                Why::Data { to } | Why::Control { to } => cur = to,
                _ => return Some(out),
            }
        }
    }

    /// Renders the chain for `s` as indented text, one hop per line.
    pub fn explain(&self, prog: &Program, s: StmtId) -> Option<String> {
        let chain = self.chain(s)?;
        let mut out = String::new();
        for (i, (stmt, why)) in chain.iter().enumerate() {
            let indent = "  ".repeat(i + 1);
            let _ = writeln!(
                out,
                "{indent}line {:>3} `{}`: {}",
                prog.line_of(*stmt),
                stmt_text(prog, *stmt),
                why.describe(prog)
            );
        }
        Some(out)
    }

    /// Full report: one chain per sliced statement, in lexical order.
    pub fn report(&self, prog: &Program, slice: &Slice) -> String {
        let mut out = String::new();
        let mut stmts: Vec<StmtId> = slice.stmts.iter().collect();
        stmts.sort_by_key(|&s| prog.line_of(s));
        for s in stmts {
            let _ = writeln!(out, "line {:>3}: {}", prog.line_of(s), stmt_text(prog, s));
            match self.explain(prog, s) {
                Some(text) => out.push_str(&text),
                None => out.push_str("  (no recorded provenance)\n"),
            }
        }
        out
    }
}

/// One-line source text of a single statement (its own line from the
/// slice printer, labels included, container lines dropped).
pub(crate) fn stmt_text(prog: &Program, s: StmtId) -> String {
    let text = jumpslice_lang::print_slice(prog, &|t| t == s, &[]);
    let want = format!("{}: ", prog.line_of(s));
    text.lines()
        .map(str::trim_start)
        .find_map(|l| l.strip_prefix(&want))
        .map(|l| l.trim().to_owned())
        .unwrap_or_default()
}

/// Internal recorder threaded through `agrawal::figure7`: runs the same
/// worklist closure as `Pdg::backward_closure_into`, remembering the first
/// edge that inserted each statement.
pub(crate) struct Recorder {
    why: Vec<Option<Why>>,
}

impl Recorder {
    pub(crate) fn new(num_stmts: usize) -> Recorder {
        Recorder {
            why: vec![None; num_stmts],
        }
    }

    /// The conventional closure from the criterion's seeds.
    pub(crate) fn seed_closure(&mut self, a: &Analysis<'_>, crit: &Criterion) -> StmtSet {
        let root = match crit.vars {
            None => Why::Criterion,
            Some(_) => Why::SeedDef,
        };
        let mut slice = StmtSet::with_capacity(a.prog().len());
        let seeds: Vec<(StmtId, Why)> = crit.seeds(a).into_iter().map(|s| (s, root)).collect();
        self.closure_into(a, seeds, &mut slice, None);
        slice
    }

    /// The dependence closure of one admitted jump.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn jump_closure(
        &mut self,
        a: &Analysis<'_>,
        j: StmtId,
        round: u32,
        npd: SlicePoint,
        nls: SlicePoint,
        via_hazard: bool,
        slice: &mut StmtSet,
    ) {
        self.jump_closure_delta(a, j, round, npd, nls, via_hazard, slice, None);
    }

    /// [`Recorder::jump_closure`] that additionally appends every newly
    /// inserted statement to `delta` — the traced twin of
    /// `Pdg::backward_closure_delta`, feeding the sparse kernel's dirty-jump
    /// index.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn jump_closure_delta(
        &mut self,
        a: &Analysis<'_>,
        j: StmtId,
        round: u32,
        npd: SlicePoint,
        nls: SlicePoint,
        via_hazard: bool,
        slice: &mut StmtSet,
        delta: Option<&mut Vec<StmtId>>,
    ) {
        let why = Why::Jump {
            round,
            npd,
            nls,
            via_hazard,
        };
        self.closure_into(a, vec![(j, why)], slice, delta);
    }

    /// Mirror of `Pdg::backward_closure_into` carrying a `Why` per worklist
    /// entry. Statements already in `slice` keep their original reason.
    /// `delta`, when present, receives every newly inserted statement.
    fn closure_into(
        &mut self,
        a: &Analysis<'_>,
        seeds: Vec<(StmtId, Why)>,
        slice: &mut StmtSet,
        mut delta: Option<&mut Vec<StmtId>>,
    ) {
        let pdg = a.pdg();
        let mut work = seeds;
        while let Some((s, why)) = work.pop() {
            if !slice.insert(s) {
                continue;
            }
            self.why[s.index()] = Some(why);
            if let Some(d) = delta.as_deref_mut() {
                d.push(s);
            }
            work.extend(pdg.data().deps(s).iter().map(|&d| (d, Why::Data { to: s })));
            work.extend(
                pdg.control()
                    .deps(s)
                    .iter()
                    .map(|&c| (c, Why::Control { to: s })),
            );
        }
    }

    pub(crate) fn finish(self, crit: &Criterion) -> Provenance {
        Provenance {
            criterion: crit.clone(),
            why: self.why,
        }
    }
}

/// [`crate::agrawal_slice`] with provenance: returns the slice together with
/// a witness chain for each sliced statement. The two share one
/// implementation, so the slice is always exactly what `agrawal_slice`
/// returns.
pub fn agrawal_slice_traced(a: &Analysis<'_>, crit: &Criterion) -> (Slice, Provenance) {
    let order = a.jumps_in_pdom_preorder();
    let mut rec = Recorder::new(a.prog().len());
    let slice = crate::agrawal::figure7(a, crit, &order, Some(&mut rec));
    let prov = rec.finish(crit);
    (slice, prov)
}

/// [`agrawal_slice_traced`] through the dense round-based loop
/// ([`crate::agrawal_slice_reference`]) instead of the sparse kernel. The
/// differential harness's `sparse` mode holds the two traced slicers
/// against each other statement-by-statement.
pub fn agrawal_slice_traced_reference(a: &Analysis<'_>, crit: &Criterion) -> (Slice, Provenance) {
    let order = a.jumps_in_pdom_preorder();
    let mut rec = Recorder::new(a.prog().len());
    let slice = crate::agrawal::figure7_reference(a, crit, &order, Some(&mut rec));
    let prov = rec.finish(crit);
    (slice, prov)
}

impl Slice {
    /// Provenance for this slice, re-derived by the traced Figure-7 slicer.
    ///
    /// Returns `None` when the traced slicer's result differs from this
    /// slice — i.e. the slice did not come from [`crate::agrawal_slice`]
    /// under `a` and `crit` (a baseline, a different criterion, a hand-built
    /// set), so no Figure-7 witness chain would be faithful to it.
    pub fn provenance(&self, a: &Analysis<'_>, crit: &Criterion) -> Option<Provenance> {
        let (traced, prov) = agrawal_slice_traced(a, crit);
        (traced.stmts == self.stmts).then_some(prov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, corpus, Analysis, Criterion};

    fn traced_matches(p: &Program, line: usize) {
        let a = Analysis::new(p);
        let crit = Criterion::at_stmt(p.at_line(line));
        let plain = agrawal_slice(&a, &crit);
        let (traced, prov) = agrawal_slice_traced(&a, &crit);
        assert_eq!(plain.stmts, traced.stmts, "traced slice must not diverge");
        assert_eq!(plain.traversals, traced.traversals);
        for s in traced.stmts.iter() {
            let chain = prov.chain(s).expect("every sliced stmt has a chain");
            let (_, root) = chain.last().unwrap();
            assert!(
                matches!(root, Why::Criterion | Why::SeedDef | Why::Jump { .. }),
                "chain must end at a root, got {root:?}"
            );
        }
        for s in p.stmt_ids() {
            if !traced.stmts.contains(s) {
                assert_eq!(prov.why(s), None, "unsliced stmt has no provenance");
            }
        }
    }

    #[test]
    fn traced_equals_plain_on_corpus() {
        for (p, line) in [
            (corpus::fig1(), 12),
            (corpus::fig3(), 15),
            (corpus::fig5(), 14),
            (corpus::fig8(), 15),
            (corpus::fig10(), 9),
            (corpus::fig16(), 10),
        ] {
            traced_matches(&p, line);
        }
    }

    #[test]
    fn traced_slices_bypass_the_condensation_and_stay_valid() {
        // The provenance contract: the recorder walks raw PDG edges itself,
        // so forcing the SCC-condensed closure index must change nothing —
        // not the slice, not any per-statement reason — and every witness
        // chain must still follow real dependence edges to a root.
        for (p, line) in [
            (corpus::fig1(), 12),
            (corpus::fig3(), 15),
            (corpus::fig10(), 9),
        ] {
            let a = Analysis::new(&p);
            a.closure_index(); // every routed closure now answers condensed
            let crit = Criterion::at_stmt(p.at_line(line));
            let plain = agrawal_slice(&a, &crit);
            let (traced, prov) = agrawal_slice_traced(&a, &crit);
            assert_eq!(plain.stmts, traced.stmts);
            assert_eq!(plain.traversals, traced.traversals);
            assert_eq!(plain.moved_labels, traced.moved_labels);

            // Bit-identical to a condensation-free analysis.
            let b = Analysis::new(&p);
            let (ref_traced, ref_prov) = agrawal_slice_traced(&b, &crit);
            assert_eq!(traced.stmts, ref_traced.stmts);
            for s in p.stmt_ids() {
                assert_eq!(prov.why(s), ref_prov.why(s), "reason for {s:?}");
            }

            // Chains are well-formed: every Data/Control hop is a real PDG
            // edge, and every chain ends at a root.
            let pdg = a.pdg();
            for s in traced.stmts.iter() {
                let chain = prov.chain(s).expect("every sliced stmt has a chain");
                for (cur, why) in &chain {
                    match why {
                        Why::Data { to } => assert!(
                            pdg.data().deps(*to).contains(cur),
                            "line {}: no data edge {to:?} -> {cur:?}",
                            p.line_of(*cur)
                        ),
                        Why::Control { to } => assert!(
                            pdg.control().deps(*to).contains(cur),
                            "line {}: no control edge {to:?} -> {cur:?}",
                            p.line_of(*cur)
                        ),
                        Why::Criterion | Why::SeedDef | Why::Jump { .. } => {}
                    }
                }
                let (_, root) = chain.last().unwrap();
                assert!(
                    matches!(root, Why::Criterion | Why::SeedDef | Why::Jump { .. }),
                    "chain must end at a root, got {root:?}"
                );
            }
        }
    }

    #[test]
    fn figure_3_jump_reasons() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let (slice, prov) = agrawal_slice_traced(&a, &Criterion::at_stmt(p.at_line(15)));
        assert!(slice.contains(p.at_line(7)));
        match prov.why(p.at_line(7)).unwrap() {
            Why::Jump {
                round,
                via_hazard,
                npd,
                nls,
            } => {
                assert_eq!(round, 1);
                assert!(!via_hazard);
                assert_ne!(npd, nls);
            }
            other => panic!("goto on line 7 should be a Jump root, got {other:?}"),
        }
        // The criterion is its own root.
        assert_eq!(prov.why(p.at_line(15)), Some(Why::Criterion));
        // Chains render.
        let text = prov.report(&p, &slice);
        assert!(text.contains("criterion statement"), "{text}");
        assert!(text.contains("jump admitted in round 1"), "{text}");
    }

    #[test]
    fn vars_at_roots_are_seed_defs() {
        let p = jumpslice_lang::parse("x = 1; y = 2; write(0);").unwrap();
        let a = Analysis::new(&p);
        let x = p.name("x").unwrap();
        let crit = Criterion::vars_at(p.at_line(3), vec![x]);
        let (slice, prov) = agrawal_slice_traced(&a, &crit);
        assert_eq!(slice.lines(&p), vec![1]);
        assert_eq!(prov.why(p.at_line(1)), Some(Why::SeedDef));
    }

    #[test]
    fn provenance_on_foreign_slice_is_none() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        let s = agrawal_slice(&a, &crit);
        assert!(s.provenance(&a, &crit).is_some());
        let hand = Slice::from_stmts([p.at_line(1)].into_iter().collect());
        assert!(hand.provenance(&a, &crit).is_none());
    }

    #[test]
    fn stmt_text_extracts_single_lines() {
        let p = corpus::fig3();
        assert_eq!(stmt_text(&p, p.at_line(7)), "goto L13;");
        // Labels ride along.
        assert!(stmt_text(&p, p.at_line(8)).starts_with("L8:"));
    }
}
