//! One-stop bundle of the structures the slicing algorithms consume.

use crate::sparse::ChainIndex;
use crate::{LexSuccTree, SlicePoint};
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{DataDeps, ReachingDefs, StmtSet};
use jumpslice_graph::DomTree;
use jumpslice_lang::{Program, StmtId, StmtKind, Structure};
use jumpslice_obs as obs;
use jumpslice_pdg::{ClosureIndex, ControlDeps, Pdg};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Build counters exposed through [`Analysis::stats`].
///
/// Each counter records how many times the corresponding artifact was
/// *computed* (not how often it was used). The caching contract — one
/// program, one computation — is asserted by the test suite through this
/// probe: repeated `vars_at` slices must leave `reaching_defs` at 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Times the reaching-definitions fixpoint ran.
    pub reaching_defs: usize,
    /// Times the program dependence graph was assembled.
    pub pdg_builds: usize,
    /// Times the postdominator tree was computed.
    pub pdom_builds: usize,
    /// Times the lexical successor tree was built.
    pub lst_builds: usize,
    /// Times the sparse kernel's jump-chain index was built.
    pub chain_index_builds: usize,
    /// Times the SCC-condensed closure index was built.
    pub closure_index_builds: usize,
}

/// Owned analysis artifacts detached from any program borrow.
///
/// A seed is harvested from a finished [`Analysis`] with
/// [`Analysis::into_seed`] and injected into a fresh one with
/// [`Analysis::with_seed`]. The incremental edit session uses this pair to
/// carry surviving artifacts across a program edit: whatever the edit left
/// valid is moved into the next `Analysis` instead of being recomputed.
///
/// Every field is optional; a missing artifact is simply computed lazily as
/// usual. **Contract:** artifacts injected via `with_seed` must be correct
/// for the program being analyzed — the seed is trusted, and a stale
/// artifact produces wrong slices, not a panic. The differential harness's
/// `incr` mode exists to enforce exactly this.
#[derive(Clone, Debug, Default)]
pub struct AnalysisSeed {
    /// The flowgraph (reused as-is when present).
    pub cfg: Option<Cfg>,
    /// The postdominator tree.
    pub pdom: Option<DomTree>,
    /// The program dependence graph.
    pub pdg: Option<Pdg>,
    /// The lexical successor tree.
    pub lst: Option<LexSuccTree>,
    /// The reaching-definitions solution.
    pub reaching: Option<ReachingDefs>,
    /// The sparse kernel's chain index (opaque; valid only while the jump
    /// structure, postdominators, and lexical successor tree are unchanged).
    pub chain_index: Option<ChainIndex>,
}

impl AnalysisSeed {
    /// How many of the four lazy artifacts are present (the flowgraph is
    /// not counted — it is always built eagerly anyway; the chain index is
    /// not counted either, being derived entirely from the others).
    pub fn reused_phases(&self) -> usize {
        usize::from(self.pdom.is_some())
            + usize::from(self.pdg.is_some())
            + usize::from(self.lst.is_some())
            + usize::from(self.reaching.is_some())
    }
}

/// Everything the algorithms in this crate need, computed per program:
/// the flowgraph eagerly, and the postdominator tree, the (unmodified)
/// program dependence graph, the lexical successor tree, and reaching
/// definitions *lazily, once, on first use*.
///
/// Laziness matters for the cheap algorithms: `conservative_slice`
/// (Figure 13) is advertised by the paper as needing neither the
/// postdominator tree nor the lexical successor tree, and with this struct
/// it no longer pays for the LST (the pdom tree is only forced if a label
/// actually needs re-associating). `Criterion::vars_at` slices share one
/// reaching-definitions fixpoint instead of re-running it per criterion,
/// and the PDG's data half is derived from that same cached fixpoint.
///
/// All lazy state lives in [`OnceLock`]s, so a fully materialized
/// `Analysis` is `Sync` and can be shared by reference across the batch
/// slicer's worker threads.
///
/// Note what is *not* here: no augmented flowgraph and no augmented PDG —
/// the paper's algorithm leaves both graphs intact and only adds the lexical
/// successor tree. The Ball–Horwitz baseline builds its augmented PDG
/// privately in [`crate::baselines`].
#[derive(Debug)]
pub struct Analysis<'p> {
    prog: &'p Program,
    structure: Structure,
    cfg: Cfg,
    /// Per-node entry reachability.
    live: Vec<bool>,
    /// Whether the program contains any `do-while` — the only construct
    /// that can make [`Analysis::dowhile_hazard`] fire. Checked eagerly so
    /// the hazard guard on paper-language programs never forces the LST.
    has_dowhile: bool,
    pdom: OnceLock<DomTree>,
    pdg: OnceLock<Pdg>,
    lst: OnceLock<LexSuccTree>,
    reaching: OnceLock<ReachingDefs>,
    chain_index: OnceLock<ChainIndex>,
    /// SCC-condensed closure engine over the PDG. Deliberately *not* part
    /// of [`AnalysisSeed`]: a stale index silently answers closures for
    /// the pre-edit dependence graph, and the condensation is cheap
    /// relative to the artifacts it is derived from.
    closure_index: OnceLock<ClosureIndex>,
    /// Per-do-while body sets (`dowhile_bodies[d]` = statements lexically
    /// inside the do-while `d`), built on first hazard probe.
    dowhile_bodies: OnceLock<Vec<StmtSet>>,
    n_reaching: AtomicUsize,
    n_pdg: AtomicUsize,
    n_pdom: AtomicUsize,
    n_lst: AtomicUsize,
    n_chain: AtomicUsize,
    n_closure: AtomicUsize,
}

impl<'p> Analysis<'p> {
    /// Analyzes `prog`.
    ///
    /// Only the flowgraph and lexical structure are computed here; the
    /// heavier artifacts (PDG, postdominators, LST, reaching definitions)
    /// are built on first use and cached.
    ///
    /// # Panics
    ///
    /// Panics if some reachable statement cannot reach the exit (a genuinely
    /// infinite loop): postdominators — and with them every algorithm in the
    /// paper — are undefined there. Use [`Cfg::all_reach_exit`] to check
    /// first when handling untrusted input.
    pub fn new(prog: &'p Program) -> Analysis<'p> {
        Self::with_seed(prog, AnalysisSeed::default())
    }

    /// Analyzes `prog`, pre-filling the lazy caches with the artifacts in
    /// `seed` (see [`AnalysisSeed`] for the correctness contract). Seeded
    /// artifacts do **not** count as builds in [`Analysis::stats`], so tests
    /// can assert reuse by checking the counters stay at zero.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`Analysis::new`].
    pub fn with_seed(prog: &'p Program, seed: AnalysisSeed) -> Analysis<'p> {
        let structure = Structure::of(prog);
        let cfg = seed.cfg.unwrap_or_else(|| Cfg::build(prog));
        assert!(
            cfg.all_reach_exit(),
            "program has statements that cannot reach the exit; postdominators are undefined"
        );
        let live = cfg.reachable();
        let has_dowhile = prog
            .stmt_ids()
            .any(|s| matches!(prog.stmt(s).kind, StmtKind::DoWhile { .. }));
        let a = Analysis {
            prog,
            structure,
            cfg,
            live,
            has_dowhile,
            pdom: OnceLock::new(),
            pdg: OnceLock::new(),
            lst: OnceLock::new(),
            reaching: OnceLock::new(),
            chain_index: OnceLock::new(),
            closure_index: OnceLock::new(),
            dowhile_bodies: OnceLock::new(),
            n_reaching: AtomicUsize::new(0),
            n_pdg: AtomicUsize::new(0),
            n_pdom: AtomicUsize::new(0),
            n_lst: AtomicUsize::new(0),
            n_chain: AtomicUsize::new(0),
            n_closure: AtomicUsize::new(0),
        };
        if let Some(x) = seed.pdom {
            let _ = a.pdom.set(x);
        }
        if let Some(x) = seed.pdg {
            let _ = a.pdg.set(x);
        }
        if let Some(x) = seed.lst {
            let _ = a.lst.set(x);
        }
        if let Some(x) = seed.reaching {
            let _ = a.reaching.set(x);
        }
        if let Some(x) = seed.chain_index {
            let _ = a.chain_index.set(x);
        }
        a
    }

    /// Consumes the analysis, harvesting every materialized artifact (plus
    /// the flowgraph) into an owned [`AnalysisSeed`]. Artifacts never forced
    /// come back `None`.
    pub fn into_seed(self) -> AnalysisSeed {
        AnalysisSeed {
            cfg: Some(self.cfg),
            pdom: self.pdom.into_inner(),
            pdg: self.pdg.into_inner(),
            lst: self.lst.into_inner(),
            reaching: self.reaching.into_inner(),
            chain_index: self.chain_index.into_inner(),
        }
    }

    /// The analyzed program.
    pub fn prog(&self) -> &'p Program {
        self.prog
    }

    /// Lexical-structure queries.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The flowgraph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The postdominator tree of the flowgraph (computed on first use).
    pub fn pdom(&self) -> &DomTree {
        self.cache_probe(obs::Artifact::Pdom, self.pdom.get().is_some());
        self.pdom.get_or_init(|| {
            self.n_pdom.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::Postdominators);
            self.cfg.postdominators()
        })
    }

    /// The (unaugmented) program dependence graph (computed on first use;
    /// its data half reuses the cached reaching-definitions fixpoint).
    pub fn pdg(&self) -> &Pdg {
        self.cache_probe(obs::Artifact::Pdg, self.pdg.get().is_some());
        self.pdg.get_or_init(|| {
            self.n_pdg.fetch_add(1, Ordering::Relaxed);
            let reaching = self.reaching();
            let _t = obs::phase(obs::Phase::PdgBuild);
            let data = DataDeps::from_reaching(self.prog, &self.cfg, reaching);
            let control = ControlDeps::compute(self.prog, &self.cfg);
            Pdg::from_parts(data, control)
        })
    }

    /// The lexical successor tree (computed on first use).
    pub fn lst(&self) -> &LexSuccTree {
        self.cache_probe(obs::Artifact::Lst, self.lst.get().is_some());
        self.lst.get_or_init(|| {
            self.n_lst.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::LstBuild);
            LexSuccTree::build(self.prog, &self.structure)
        })
    }

    /// The reaching-definitions fixpoint (computed on first use). Shared by
    /// every `vars_at` criterion and by the PDG's data-dependence half.
    pub fn reaching(&self) -> &ReachingDefs {
        self.cache_probe(obs::Artifact::ReachingDefs, self.reaching.get().is_some());
        self.reaching.get_or_init(|| {
            self.n_reaching.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::ReachingDefs);
            ReachingDefs::compute(self.prog, &self.cfg)
        })
    }

    /// The sparse Figure-7 kernel's flattened jump-chain index (computed on
    /// first use; forces the postdominator tree, and — when the program has
    /// any live unconditional jump — the lexical successor tree).
    pub(crate) fn chain_index(&self) -> &ChainIndex {
        self.cache_probe(obs::Artifact::ChainIndex, self.chain_index.get().is_some());
        self.chain_index.get_or_init(|| {
            self.n_chain.fetch_add(1, Ordering::Relaxed);
            ChainIndex::build(self)
        })
    }

    /// The SCC-condensed closure index (computed on first use; forces the
    /// PDG).
    ///
    /// Unlike the paper artifacts above, this is a pure acceleration
    /// structure: it emits no cache hit/miss events (the exact cache
    /// traces the observability tests pin enumerate paper artifacts only)
    /// and is never carried across edits in an [`AnalysisSeed`]. Once
    /// built, every closure routed through [`Analysis::backward_closure`]
    /// and friends is answered from the condensation.
    pub fn closure_index(&self) -> &ClosureIndex {
        self.closure_index.get_or_init(|| {
            self.n_closure.fetch_add(1, Ordering::Relaxed);
            ClosureIndex::build(self.pdg())
        })
    }

    /// [`Pdg::backward_closure`] answered from the condensed index when
    /// one has been built ([`Analysis::warm_parallel`] or
    /// [`Analysis::closure_index`]) and from the direct edge walk
    /// otherwise. The answers are identical.
    pub fn backward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        match self.closure_index.get() {
            Some(ci) => ci.backward_closure(seeds),
            None => self.pdg().backward_closure(seeds),
        }
    }

    /// [`Pdg::forward_closure`] routed like [`Analysis::backward_closure`].
    pub fn forward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        match self.closure_index.get() {
            Some(ci) => ci.forward_closure(seeds),
            None => self.pdg().forward_closure(seeds),
        }
    }

    /// [`Pdg::backward_closure_into_with_scratch`] routed through the
    /// condensed index when built. **Contract:** `slice` must be empty or
    /// closed under dependence — the condensed path unions the seeds'
    /// full closures, which matches the direct walk's visited-mark
    /// semantics only on closed targets (every fixpoint call site
    /// qualifies; see `jumpslice_pdg::closure`).
    pub(crate) fn backward_closure_into_closed(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
        work: &mut Vec<StmtId>,
    ) {
        match self.closure_index.get() {
            Some(ci) => ci.backward_closure_into(seeds, slice),
            None => self
                .pdg()
                .backward_closure_into_with_scratch(seeds, slice, work),
        }
    }

    /// [`Pdg::backward_closure_delta`] under the same closed-target
    /// contract as [`Analysis::backward_closure_into_closed`]. The direct
    /// walk appends the delta in DFS pop order, the condensed path in
    /// ascending statement order; the sparse kernel consumes deltas only
    /// through set unions and counts, so the two are interchangeable.
    pub(crate) fn backward_closure_delta_closed(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
        work: &mut Vec<StmtId>,
        delta: &mut Vec<StmtId>,
    ) {
        match self.closure_index.get() {
            Some(ci) => ci.backward_closure_delta(seeds, slice, delta),
            None => self.pdg().backward_closure_delta(seeds, slice, work, delta),
        }
    }

    /// The set of statements lexically inside do-while `d` (empty for any
    /// other statement). Built once for all do-whiles on first use.
    pub(crate) fn dowhile_body(&self, d: StmtId) -> &StmtSet {
        let bodies = self.dowhile_bodies.get_or_init(|| {
            let n = self.prog.len();
            let mut out = vec![StmtSet::with_capacity(0); n];
            // One ancestor walk per statement instead of one full program
            // scan per do-while.
            for s in self.prog.stmt_ids() {
                let mut cur = self.structure.parent(s);
                while let Some(t) = cur {
                    if matches!(self.prog.stmt(t).kind, StmtKind::DoWhile { .. }) {
                        out[t.index()].insert(s);
                    }
                    cur = self.structure.parent(t);
                }
            }
            out
        });
        &bodies[d.index()]
    }

    /// Emits one cache hit/miss event for an artifact accessor. `hit` is
    /// sampled *before* `get_or_init` runs, so the request that triggers the
    /// computation reports a miss.
    fn cache_probe(&self, artifact: obs::Artifact, hit: bool) {
        obs::record(|| obs::Event::Cache { artifact, hit });
    }

    /// How many times each lazy artifact has been computed so far. The
    /// caching contract is "at most once per program"; tests hold this
    /// probe against workloads that used to recompute per criterion.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            reaching_defs: self.n_reaching.load(Ordering::Relaxed),
            pdg_builds: self.n_pdg.load(Ordering::Relaxed),
            pdom_builds: self.n_pdom.load(Ordering::Relaxed),
            lst_builds: self.n_lst.load(Ordering::Relaxed),
            chain_index_builds: self.n_chain.load(Ordering::Relaxed),
            closure_index_builds: self.n_closure.load(Ordering::Relaxed),
        }
    }

    /// Forces every lazy artifact now. The batch slicer calls this before
    /// fanning out so worker threads share fully materialized state instead
    /// of racing to initialize it (the `OnceLock`s make such races safe,
    /// merely wasteful).
    pub fn warm(&self) {
        let _ = (self.reaching(), self.pdg(), self.pdom(), self.lst());
        let _ = self.chain_index();
    }

    /// True when every artifact the sequential [`Analysis::warm`] pass
    /// computes is already cached. The condensed closure index is
    /// deliberately excluded: it is never restored from a seed (see
    /// [`AnalysisSeed`]), so callers that re-solve warm seeds per request
    /// use this probe to avoid re-paying the condensation build on a path
    /// where it could not be amortised anyway.
    pub fn is_warm(&self) -> bool {
        self.reaching.get().is_some()
            && self.pdg.get().is_some()
            && self.pdom.get().is_some()
            && self.lst.get().is_some()
            && self.chain_index.get().is_some()
    }

    /// [`Analysis::warm`] plus the condensed closure index, scheduled
    /// across `threads` scoped worker threads along the real phase DAG:
    ///
    /// - a helper thread runs the CFG-only chain (postdominators, control
    ///   dependence, lexical successor tree) while the coordinator runs
    ///   the reaching-definitions fixpoint;
    /// - once IN-sets land, data-dependence construction fans out over
    ///   statement ranges (the per-range forward lists concatenate to
    ///   exactly the sequential result — see
    ///   [`DataDeps::deps_of_range`]);
    /// - the chain-index build overlaps the PDG merge and the closure-
    ///   index condensation on the coordinator.
    ///
    /// Deterministic: the installed artifacts are bit-identical to the
    /// sequential path under any thread count. `threads <= 1` runs the
    /// plain sequential warm (plus the closure index). Worker threads
    /// have empty trace sinks, so phases computed off-coordinator emit no
    /// events; the coordinator emits a `parallel_warm` phase and
    /// `analysis.parallel.*` counters when there was cold work to do.
    ///
    /// # Panics
    ///
    /// A panicking phase worker is re-raised on the coordinator with the
    /// phase name attached (mirroring how `BatchSlicer::try_slice_all`
    /// attributes a slicer panic to its criterion).
    pub fn warm_parallel(&self, threads: usize) {
        if threads <= 1 {
            self.warm();
            let _ = self.closure_index();
            return;
        }
        if self.reaching.get().is_some()
            && self.pdg.get().is_some()
            && self.pdom.get().is_some()
            && self.lst.get().is_some()
            && self.chain_index.get().is_some()
            && self.closure_index.get().is_some()
        {
            return; // fully warm: nothing to schedule
        }
        let _t = obs::phase(obs::Phase::ParallelWarm);
        let need_pdg = self.pdg.get().is_none();
        let n = self.prog.len();
        std::thread::scope(|scope| {
            // CFG-only chain: nothing here reads the reaching fixpoint or
            // the PDG, so it overlaps both.
            let helper = spawn_caught(scope, || {
                let pdom = (self.pdom.get().is_none()).then(|| self.cfg.postdominators());
                let control = need_pdg.then(|| {
                    let tree = pdom
                        .as_ref()
                        .or_else(|| self.pdom.get())
                        .expect("pdom just computed or already cached");
                    ControlDeps::compute_with_pdom(self.prog, &self.cfg, tree)
                });
                let lst = (self.lst.get().is_none())
                    .then(|| LexSuccTree::build(self.prog, &self.structure));
                (pdom, control, lst)
            });

            // The reaching-definitions fixpoint on the coordinator.
            if self.reaching.get().is_none() {
                let rd = {
                    let _t = obs::phase(obs::Phase::ReachingDefs);
                    ReachingDefs::compute(self.prog, &self.cfg)
                };
                if self.reaching.set(rd).is_ok() {
                    self.n_reaching.fetch_add(1, Ordering::Relaxed);
                }
            }

            // Data-dependence fan-out over statement ranges; the
            // coordinator takes the first range itself.
            let mut parts: Vec<Vec<Vec<StmtId>>> = Vec::new();
            if need_pdg {
                let rd = self.reaching.get().expect("installed above");
                let chunk = n.div_ceil(threads).max(1);
                let ranges: Vec<(usize, usize)> = (0..threads)
                    .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
                    .filter(|&(lo, hi)| lo < hi)
                    .collect();
                let handles: Vec<_> = ranges
                    .iter()
                    .skip(1)
                    .map(|&(lo, hi)| {
                        spawn_caught(scope, move || {
                            DataDeps::deps_of_range(self.prog, &self.cfg, rd, lo, hi)
                        })
                    })
                    .collect();
                if let Some(&(lo, hi)) = ranges.first() {
                    parts.push(DataDeps::deps_of_range(self.prog, &self.cfg, rd, lo, hi));
                }
                for h in handles {
                    parts.push(join_caught("data_deps", h));
                }
                obs::record(|| obs::Event::Count {
                    name: "analysis.parallel.data_ranges",
                    value: ranges.len() as u64,
                });
            }

            let (pdom, control, lst) = join_caught("cfg_chain", helper);
            if let Some(x) = pdom {
                if self.pdom.set(x).is_ok() {
                    self.n_pdom.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(x) = lst {
                if self.lst.set(x).is_ok() {
                    self.n_lst.fetch_add(1, Ordering::Relaxed);
                }
            }

            // The chain index reads only pdom + LST (+ structure), both
            // installed above: overlap it with the PDG merge and the
            // condensation.
            let chain = (self.chain_index.get().is_none())
                .then(|| spawn_caught(scope, || ChainIndex::build(self)));

            if let Some(control) = control {
                let _t = obs::phase(obs::Phase::PdgBuild);
                let mut deps: Vec<Vec<StmtId>> = Vec::with_capacity(n);
                for part in parts {
                    deps.extend(part);
                }
                let data = DataDeps::from_deps(deps);
                let pdg = Pdg::from_parts(data, control);
                if self.pdg.set(pdg).is_ok() {
                    self.n_pdg.fetch_add(1, Ordering::Relaxed);
                }
            }

            if self.closure_index.get().is_none() {
                let ci = ClosureIndex::build(self.pdg.get().expect("pdg installed above"));
                if self.closure_index.set(ci).is_ok() {
                    self.n_closure.fetch_add(1, Ordering::Relaxed);
                }
            }

            if let Some(h) = chain {
                let ci = join_caught("chain_index", h);
                if self.chain_index.set(ci).is_ok() {
                    self.n_chain.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        obs::record(|| obs::Event::Count {
            name: "analysis.parallel.threads",
            value: threads as u64,
        });
    }

    /// Whether `s` is a jump statement (including the fused conditional
    /// goto).
    pub fn is_jump(&self, s: StmtId) -> bool {
        self.prog.stmt(s).kind.is_jump()
    }

    /// The statement a jump transfers control to (`None` = exit). For
    /// `break` that is the statement following the enclosing breakable
    /// construct; for `continue`, the enclosing loop's predicate.
    ///
    /// Returns `None` for non-jumps as well as for `return`; pair with
    /// [`Analysis::is_jump`] when the distinction matters.
    pub fn jump_target(&self, s: StmtId) -> SlicePoint {
        match &self.prog.stmt(s).kind {
            StmtKind::Goto { target } | StmtKind::CondGoto { target, .. } => {
                self.prog.label_target(*target)
            }
            StmtKind::Break => {
                let b = self
                    .structure
                    .enclosing_breakable(s)
                    .expect("validated: break inside breakable");
                self.lst().immediate(b)
            }
            StmtKind::Continue => self.structure.enclosing_loop(s),
            StmtKind::Return { .. } => None,
            _ => None,
        }
    }

    /// The nearest postdominator of `s` that is in `slice` (`None` = exit,
    /// which is implicitly in every slice).
    pub fn nearest_pdom_in(&self, s: StmtId, slice: &StmtSet) -> SlicePoint {
        let node = self.cfg.node(s);
        for a in self.pdom().ancestors(node) {
            if a == self.cfg.exit() {
                return None;
            }
            if let Some(t) = self.cfg.stmt(a) {
                if slice.contains(t) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// The nearest lexical successor of `s` that is in `slice` (`None` =
    /// exit).
    pub fn nearest_lexsucc_in(&self, s: StmtId, slice: &StmtSet) -> SlicePoint {
        self.lst().nearest_where(s, |t| slice.contains(t))
    }

    /// Extension guard for `do-while`, a construct outside the paper's
    /// language: walking the lexical-successor chain from jump `j` toward
    /// its nearest in-slice successor, returns `true` if the walk passes
    /// through a `do-while` that is *not* in the slice but whose body
    /// contains slice statements.
    ///
    /// Deleting such a jump makes control fall into the do-while's
    /// *condition*, which may loop back and re-execute the in-slice body —
    /// even when the condition was dead code in the original program (a
    /// body ending in `break`). The paper's npd-vs-nls test cannot see
    /// this because a do-while's entry (its body) differs from its
    /// flowgraph node (its condition); for the paper's own constructs the
    /// guard never fires — and for programs without any `do-while` it
    /// returns immediately, without forcing the lexical successor tree.
    pub fn dowhile_hazard(&self, j: StmtId, slice: &StmtSet) -> bool {
        if !self.has_dowhile {
            return false;
        }
        let mut prev = j;
        for t in self.lst().successors(j) {
            if slice.contains(t) {
                return false;
            }
            // Only an arrival *from inside the body* lands on the loop
            // condition (the last-body-statement rule); reaching a do-while
            // from outside enters its body, which is harmless.
            if matches!(self.prog.stmt(t).kind, StmtKind::DoWhile { .. })
                && self.structure.contains(t, prev)
                && self.dowhile_body(t).intersects(slice)
            {
                return true;
            }
            prev = t;
        }
        false
    }

    /// Whether `s` is reachable from the program entry. Dead statements are
    /// never considered for slice inclusion: they cannot execute, and
    /// including one without its (removed) guards would change the residual
    /// program's flow.
    pub fn is_live(&self, s: StmtId) -> bool {
        self.live[self.cfg.node(s).index()]
    }

    /// *Unconditional* jump statements in preorder of the postdominator
    /// tree — the visit order and candidate set of the paper's Figure 7.
    ///
    /// Conditional jumps are deliberately absent: §3 handles them through
    /// the conventional algorithm's adaptation (the fused conditional goto
    /// is included exactly when its predicate is), and the traversal
    /// question is posed only for unconditional jumps. Examining fused
    /// conditional gotos here would make the iteration order-dependent and
    /// strictly coarser than Ball–Horwitz (an early npd ≠ nls judgement can
    /// be invalidated by later closure additions). Dead jumps are skipped.
    pub fn jumps_in_pdom_preorder(&self) -> Vec<StmtId> {
        self.pdom()
            .preorder()
            .filter_map(|n| self.cfg.stmt(n))
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }

    /// Unconditional jump statements in preorder of the lexical successor
    /// tree — the alternative driver the paper mentions; used by the
    /// ablation bench. Dead jumps are skipped.
    pub fn jumps_in_lst_preorder(&self) -> Vec<StmtId> {
        self.lst()
            .preorder()
            .into_iter()
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }
}

/// Spawns `f` on a scoped worker, catching any panic *worker-side* so the
/// coordinator can re-raise it with the phase name attached — a raw scoped
/// join only says "a scoped thread panicked", which attributes nothing.
fn spawn_caught<'scope, 'env, T: Send + 'scope>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    f: impl FnOnce() -> T + Send + 'scope,
) -> std::thread::ScopedJoinHandle<'scope, Result<T, String>> {
    scope.spawn(move || catch_unwind(AssertUnwindSafe(f)).map_err(worker_panic_message))
}

/// Renders a caught worker panic payload.
fn worker_panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Joins a [`spawn_caught`] worker, re-raising any worker panic on the
/// coordinator attributed to its phase — the `warm_parallel` analogue of
/// `BatchSlicer::try_slice_all` attributing a slicer panic to its
/// criterion.
fn join_caught<T>(phase: &str, h: std::thread::ScopedJoinHandle<'_, Result<T, String>>) -> T {
    match h.join() {
        Ok(Ok(v)) => v,
        Ok(Err(msg)) => panic!("warm_parallel: `{phase}` phase worker panicked: {msg}"),
        Err(_) => panic!("warm_parallel: `{phase}` phase worker panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn jump_targets() {
        let p = parse(
            "while (c) {
               if (a) break;
               if (b) continue;
               goto OUT;
             }
             OUT: write(x);
             return;",
        )
        .unwrap();
        let a = Analysis::new(&p);
        // Lines: 1 while, 2 if, 3 break, 4 if, 5 continue, 6 goto, 7 write,
        // 8 return.
        assert_eq!(a.jump_target(p.at_line(3)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(5)), Some(p.at_line(1)));
        assert_eq!(a.jump_target(p.at_line(6)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(8)), None);
        assert_eq!(a.jump_target(p.at_line(7)), None, "non-jump");
    }

    #[test]
    fn break_at_end_of_program_targets_exit() {
        let p = parse("while (c) { break; }").unwrap();
        let a = Analysis::new(&p);
        assert_eq!(a.jump_target(p.at_line(2)), None);
    }

    #[test]
    fn nearest_queries() {
        let p = parse("a = 1; b = 2; c = 3; d = 4;").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(3)].into_iter().collect();
        assert_eq!(a.nearest_pdom_in(p.at_line(1), &slice), Some(p.at_line(3)));
        assert_eq!(
            a.nearest_lexsucc_in(p.at_line(1), &slice),
            Some(p.at_line(3))
        );
        assert_eq!(
            a.nearest_pdom_in(p.at_line(3), &slice),
            None,
            "proper ancestors only"
        );
        assert_eq!(
            a.nearest_pdom_in(p.at_line(4), &slice),
            None,
            "falls to exit"
        );
    }

    #[test]
    #[should_panic(expected = "cannot reach the exit")]
    fn infinite_loop_rejected() {
        let p = parse("L: goto L;").unwrap();
        let _ = Analysis::new(&p);
    }

    #[test]
    fn jump_orders_cover_unconditional_jumps_only() {
        let p = parse("L3: if (eof()) goto L14; goto L3; L14: write(x);").unwrap();
        let a = Analysis::new(&p);
        // The fused conditional goto on line 1 is handled by the
        // conventional adaptation, not the traversal; only `goto L3` is a
        // traversal candidate.
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(2)]);
        assert_eq!(a.jumps_in_lst_preorder(), vec![p.at_line(2)]);
    }

    #[test]
    fn dead_jumps_excluded_from_orders() {
        let p = parse("goto END; goto END; END: write(x);").unwrap();
        let a = Analysis::new(&p);
        assert!(!a.is_live(p.at_line(2)), "second goto is dead");
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(1)]);
    }

    #[test]
    fn lazy_artifacts_compute_once() {
        let p = parse("read(c); while (c) { read(c); } write(c);").unwrap();
        let a = Analysis::new(&p);
        assert_eq!(a.stats(), AnalysisStats::default(), "nothing forced yet");
        for _ in 0..5 {
            let _ = a.pdg();
            let _ = a.pdom();
            let _ = a.lst();
            let _ = a.reaching();
        }
        let s = a.stats();
        assert_eq!(
            s,
            AnalysisStats {
                reaching_defs: 1,
                pdg_builds: 1,
                pdom_builds: 1,
                lst_builds: 1,
                chain_index_builds: 0,
                closure_index_builds: 0,
            },
            "each artifact computed exactly once"
        );
        for _ in 0..5 {
            let _ = a.chain_index();
        }
        assert_eq!(a.stats().chain_index_builds, 1);
    }

    /// The phase-DAG scheduler is deterministic: the artifacts it installs
    /// are bit-identical to the sequential path under 1, 2, and 4 threads,
    /// and every slicer sees the same slices.
    #[test]
    fn warm_parallel_is_deterministic_across_thread_counts() {
        let p = parse(
            "sum = 0;
             positives = 0;
             L3: if (eof()) goto L14;
             read(x);
             if (x > 0) goto L8;
             sum = sum + f1(x);
             goto L13;
             L8: positives = positives + 1;
             if (x % 2 != 0) goto L12;
             sum = sum + f2(x);
             goto L13;
             L12: sum = sum + f3(x);
             L13: goto L3;
             L14: write(sum);
             write(positives);",
        )
        .unwrap();
        let seq = Analysis::new(&p);
        seq.warm_parallel(1);
        for threads in [2usize, 4] {
            let par = Analysis::new(&p);
            par.warm_parallel(threads);
            for s in p.stmt_ids() {
                assert_eq!(
                    par.pdg().data().deps(s),
                    seq.pdg().data().deps(s),
                    "data deps at line {} under {threads} threads",
                    p.line_of(s)
                );
                assert_eq!(
                    par.pdg().control().deps(s),
                    seq.pdg().control().deps(s),
                    "control deps at line {} under {threads} threads",
                    p.line_of(s)
                );
                assert_eq!(par.backward_closure([s]), seq.backward_closure([s]));
                assert_eq!(par.forward_closure([s]), seq.forward_closure([s]));
                let c = crate::Criterion::at_stmt(s);
                assert_eq!(
                    crate::agrawal_slice(&par, &c).stmts,
                    crate::agrawal_slice(&seq, &c).stmts,
                    "figure-7 slice at line {} under {threads} threads",
                    p.line_of(s)
                );
            }
            assert_eq!(
                par.stats(),
                AnalysisStats {
                    reaching_defs: 1,
                    pdg_builds: 1,
                    pdom_builds: 1,
                    lst_builds: 1,
                    chain_index_builds: 1,
                    closure_index_builds: 1,
                },
                "every artifact built exactly once under {threads} threads"
            );
        }
    }

    /// A second parallel warm on an already-warm analysis schedules
    /// nothing, and a partially warm analysis only fills the gaps.
    #[test]
    fn warm_parallel_is_idempotent_and_completes_partial_warmth() {
        let p = parse("read(c); while (c) { read(c); } write(c);").unwrap();
        let a = Analysis::new(&p);
        let _ = a.pdg(); // pre-force part of the DAG
        let _ = a.lst();
        a.warm_parallel(4);
        a.warm_parallel(4);
        assert_eq!(
            a.stats(),
            AnalysisStats {
                reaching_defs: 1,
                pdg_builds: 1,
                pdom_builds: 1,
                lst_builds: 1,
                chain_index_builds: 1,
                closure_index_builds: 1,
            }
        );
    }

    /// A panicking phase worker is re-raised on the coordinator with the
    /// phase name attached, exactly like `try_slice_all` attributes a
    /// slicer panic to its criterion.
    #[test]
    fn warm_parallel_attributes_worker_panics_to_their_phase() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let h = spawn_caught(s, || -> usize { panic!("boom in pdom") });
                join_caught("cfg_chain", h)
            })
        }))
        .expect_err("worker panic must propagate");
        let msg = worker_panic_message(caught);
        assert!(msg.contains("`cfg_chain`"), "phase attributed: {msg}");
        assert!(msg.contains("boom in pdom"), "payload preserved: {msg}");
    }

    /// Once the condensation exists, the routed closure wrappers answer
    /// from it — and agree with the direct walk bit for bit.
    #[test]
    fn routed_closures_match_direct_walks() {
        let p = parse("read(c); while (c) { read(x); y = x; } write(y); write(c);").unwrap();
        let a = Analysis::new(&p);
        let direct: Vec<StmtSet> = p
            .stmt_ids()
            .map(|s| a.pdg().backward_closure([s]))
            .collect();
        let _ = a.closure_index();
        assert_eq!(a.stats().closure_index_builds, 1);
        for (i, s) in p.stmt_ids().enumerate() {
            assert_eq!(a.backward_closure([s]), direct[i]);
            assert_eq!(a.forward_closure([s]), a.pdg().forward_closure([s]));
        }
    }

    #[test]
    fn dowhile_body_sets_match_structure_contains() {
        let p = parse(
            "read(x);
             do { x = x + 1; do { y = 2; } while (y); } while (x < 3);
             write(x);",
        )
        .unwrap();
        let a = Analysis::new(&p);
        for t in p.stmt_ids() {
            let body = a.dowhile_body(t);
            for s in p.stmt_ids() {
                assert_eq!(
                    body.contains(s),
                    matches!(p.stmt(t).kind, StmtKind::DoWhile { .. })
                        && a.structure().contains(t, s),
                    "body set of line {} at line {}",
                    p.line_of(t),
                    p.line_of(s)
                );
            }
        }
    }

    /// The satellite fix pinned: the hazard guard answers through the
    /// precomputed body bitset exactly as the old O(|slice|) scan did, on
    /// every slice state of a program where the hazard genuinely fires
    /// (break inside a do-while, body statements sliced, loop head not).
    #[test]
    fn dowhile_hazard_matches_linear_scan() {
        let p = parse("read(x); do { x = x + 1; if (c) break; y = 2; } while (x < 10); write(y);")
            .unwrap();
        let a = Analysis::new(&p);
        let brk = p.at_line(5);
        let old_scan = |j: StmtId, slice: &StmtSet| -> bool {
            let mut prev = j;
            for t in a.lst().successors(j) {
                if slice.contains(t) {
                    return false;
                }
                if matches!(p.stmt(t).kind, StmtKind::DoWhile { .. })
                    && a.structure().contains(t, prev)
                    && slice.iter().any(|s| a.structure().contains(t, s))
                {
                    return true;
                }
                prev = t;
            }
            false
        };
        let n = p.len();
        let mut fired = false;
        for mask in 0u32..(1 << n) {
            let slice: StmtSet = p
                .stmt_ids()
                .filter(|s| mask & (1 << s.index()) != 0)
                .collect();
            let got = a.dowhile_hazard(brk, &slice);
            assert_eq!(got, old_scan(brk, &slice), "slice mask {mask:#b}");
            fired |= got;
        }
        assert!(fired, "the hazard case is actually exercised");
    }

    #[test]
    fn dowhile_hazard_short_circuits_without_dowhile() {
        let p = parse("x = 1; goto L; y = 2; L: write(x);").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(4)].into_iter().collect();
        assert!(!a.dowhile_hazard(p.at_line(2), &slice));
        assert_eq!(a.stats().lst_builds, 0, "no LST forced by the fast path");
    }
}
