//! One-stop bundle of the structures the slicing algorithms consume.

use crate::{LexSuccTree, SlicePoint};
use jumpslice_cfg::Cfg;
use jumpslice_graph::DomTree;
use jumpslice_lang::{Program, StmtId, StmtKind, Structure};
use jumpslice_pdg::Pdg;
use std::collections::BTreeSet;

/// Everything the algorithms in this crate need, computed once per program:
/// the flowgraph, its postdominator tree, the (unmodified) program
/// dependence graph, the lexical successor tree, and structural queries.
///
/// Note what is *not* here: no augmented flowgraph and no augmented PDG —
/// the paper's algorithm leaves both graphs intact and only adds the lexical
/// successor tree. The Ball–Horwitz baseline builds its augmented PDG
/// privately in [`crate::baselines`].
#[derive(Debug)]
pub struct Analysis<'p> {
    prog: &'p Program,
    structure: Structure,
    cfg: Cfg,
    pdom: DomTree,
    pdg: Pdg,
    lst: LexSuccTree,
    /// Per-node entry reachability.
    live: Vec<bool>,
}

impl<'p> Analysis<'p> {
    /// Analyzes `prog`.
    ///
    /// # Panics
    ///
    /// Panics if some reachable statement cannot reach the exit (a genuinely
    /// infinite loop): postdominators — and with them every algorithm in the
    /// paper — are undefined there. Use [`Cfg::all_reach_exit`] to check
    /// first when handling untrusted input.
    pub fn new(prog: &'p Program) -> Analysis<'p> {
        let structure = Structure::of(prog);
        let cfg = Cfg::build(prog);
        assert!(
            cfg.all_reach_exit(),
            "program has statements that cannot reach the exit; postdominators are undefined"
        );
        let pdom = cfg.postdominators();
        let pdg = Pdg::build(prog, &cfg);
        let lst = LexSuccTree::build(prog, &structure);
        let live = cfg.reachable();
        Analysis {
            prog,
            structure,
            cfg,
            pdom,
            pdg,
            lst,
            live,
        }
    }

    /// The analyzed program.
    pub fn prog(&self) -> &'p Program {
        self.prog
    }

    /// Lexical-structure queries.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The flowgraph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The postdominator tree of the flowgraph.
    pub fn pdom(&self) -> &DomTree {
        &self.pdom
    }

    /// The (unaugmented) program dependence graph.
    pub fn pdg(&self) -> &Pdg {
        &self.pdg
    }

    /// The lexical successor tree.
    pub fn lst(&self) -> &LexSuccTree {
        &self.lst
    }

    /// Whether `s` is a jump statement (including the fused conditional
    /// goto).
    pub fn is_jump(&self, s: StmtId) -> bool {
        self.prog.stmt(s).kind.is_jump()
    }

    /// The statement a jump transfers control to (`None` = exit). For
    /// `break` that is the statement following the enclosing breakable
    /// construct; for `continue`, the enclosing loop's predicate.
    ///
    /// Returns `None` for non-jumps as well as for `return`; pair with
    /// [`Analysis::is_jump`] when the distinction matters.
    pub fn jump_target(&self, s: StmtId) -> SlicePoint {
        match &self.prog.stmt(s).kind {
            StmtKind::Goto { target } | StmtKind::CondGoto { target, .. } => {
                self.prog.label_target(*target)
            }
            StmtKind::Break => {
                let b = self
                    .structure
                    .enclosing_breakable(s)
                    .expect("validated: break inside breakable");
                self.lst.immediate(b)
            }
            StmtKind::Continue => self.structure.enclosing_loop(s),
            StmtKind::Return { .. } => None,
            _ => None,
        }
    }

    /// The nearest postdominator of `s` that is in `slice` (`None` = exit,
    /// which is implicitly in every slice).
    pub fn nearest_pdom_in(&self, s: StmtId, slice: &BTreeSet<StmtId>) -> SlicePoint {
        let node = self.cfg.node(s);
        for a in self.pdom.ancestors(node) {
            if a == self.cfg.exit() {
                return None;
            }
            if let Some(t) = self.cfg.stmt(a) {
                if slice.contains(&t) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// The nearest lexical successor of `s` that is in `slice` (`None` =
    /// exit).
    pub fn nearest_lexsucc_in(&self, s: StmtId, slice: &BTreeSet<StmtId>) -> SlicePoint {
        self.lst.nearest_where(s, |t| slice.contains(&t))
    }

    /// Extension guard for `do-while`, a construct outside the paper's
    /// language: walking the lexical-successor chain from jump `j` toward
    /// its nearest in-slice successor, returns `true` if the walk passes
    /// through a `do-while` that is *not* in the slice but whose body
    /// contains slice statements.
    ///
    /// Deleting such a jump makes control fall into the do-while's
    /// *condition*, which may loop back and re-execute the in-slice body —
    /// even when the condition was dead code in the original program (a
    /// body ending in `break`). The paper's npd-vs-nls test cannot see
    /// this because a do-while's entry (its body) differs from its
    /// flowgraph node (its condition); for the paper's own constructs the
    /// guard never fires. See `tests/extension_gaps.rs`.
    pub fn dowhile_hazard(&self, j: StmtId, slice: &BTreeSet<StmtId>) -> bool {
        let mut prev = j;
        for t in self.lst.successors(j) {
            if slice.contains(&t) {
                return false;
            }
            // Only an arrival *from inside the body* lands on the loop
            // condition (the last-body-statement rule); reaching a do-while
            // from outside enters its body, which is harmless.
            if matches!(self.prog.stmt(t).kind, StmtKind::DoWhile { .. })
                && self.structure.contains(t, prev)
                && slice.iter().any(|&s| self.structure.contains(t, s))
            {
                return true;
            }
            prev = t;
        }
        false
    }

    /// Whether `s` is reachable from the program entry. Dead statements are
    /// never considered for slice inclusion: they cannot execute, and
    /// including one without its (removed) guards would change the residual
    /// program's flow.
    pub fn is_live(&self, s: StmtId) -> bool {
        self.live[self.cfg.node(s).index()]
    }

    /// *Unconditional* jump statements in preorder of the postdominator
    /// tree — the visit order and candidate set of the paper's Figure 7.
    ///
    /// Conditional jumps are deliberately absent: §3 handles them through
    /// the conventional algorithm's adaptation (the fused conditional goto
    /// is included exactly when its predicate is), and the traversal
    /// question is posed only for unconditional jumps. Examining fused
    /// conditional gotos here would make the iteration order-dependent and
    /// strictly coarser than Ball–Horwitz (an early npd ≠ nls judgement can
    /// be invalidated by later closure additions). Dead jumps are skipped.
    pub fn jumps_in_pdom_preorder(&self) -> Vec<StmtId> {
        self.pdom
            .preorder()
            .filter_map(|n| self.cfg.stmt(n))
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }

    /// Unconditional jump statements in preorder of the lexical successor
    /// tree — the alternative driver the paper mentions; used by the
    /// ablation bench. Dead jumps are skipped.
    pub fn jumps_in_lst_preorder(&self) -> Vec<StmtId> {
        self.lst
            .preorder()
            .into_iter()
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn jump_targets() {
        let p = parse(
            "while (c) {
               if (a) break;
               if (b) continue;
               goto OUT;
             }
             OUT: write(x);
             return;",
        )
        .unwrap();
        let a = Analysis::new(&p);
        // Lines: 1 while, 2 if, 3 break, 4 if, 5 continue, 6 goto, 7 write,
        // 8 return.
        assert_eq!(a.jump_target(p.at_line(3)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(5)), Some(p.at_line(1)));
        assert_eq!(a.jump_target(p.at_line(6)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(8)), None);
        assert_eq!(a.jump_target(p.at_line(7)), None, "non-jump");
    }

    #[test]
    fn break_at_end_of_program_targets_exit() {
        let p = parse("while (c) { break; }").unwrap();
        let a = Analysis::new(&p);
        assert_eq!(a.jump_target(p.at_line(2)), None);
    }

    #[test]
    fn nearest_queries() {
        let p = parse("a = 1; b = 2; c = 3; d = 4;").unwrap();
        let a = Analysis::new(&p);
        let slice: BTreeSet<StmtId> = [p.at_line(3)].into_iter().collect();
        assert_eq!(a.nearest_pdom_in(p.at_line(1), &slice), Some(p.at_line(3)));
        assert_eq!(a.nearest_lexsucc_in(p.at_line(1), &slice), Some(p.at_line(3)));
        assert_eq!(a.nearest_pdom_in(p.at_line(3), &slice), None, "proper ancestors only");
        assert_eq!(a.nearest_pdom_in(p.at_line(4), &slice), None, "falls to exit");
    }

    #[test]
    #[should_panic(expected = "cannot reach the exit")]
    fn infinite_loop_rejected() {
        let p = parse("L: goto L;").unwrap();
        let _ = Analysis::new(&p);
    }

    #[test]
    fn jump_orders_cover_unconditional_jumps_only() {
        let p = parse("L3: if (eof()) goto L14; goto L3; L14: write(x);").unwrap();
        let a = Analysis::new(&p);
        // The fused conditional goto on line 1 is handled by the
        // conventional adaptation, not the traversal; only `goto L3` is a
        // traversal candidate.
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(2)]);
        assert_eq!(a.jumps_in_lst_preorder(), vec![p.at_line(2)]);
    }

    #[test]
    fn dead_jumps_excluded_from_orders() {
        let p = parse("goto END; goto END; END: write(x);").unwrap();
        let a = Analysis::new(&p);
        assert!(!a.is_live(p.at_line(2)), "second goto is dead");
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(1)]);
    }
}
