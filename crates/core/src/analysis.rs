//! One-stop bundle of the structures the slicing algorithms consume.

use crate::sparse::ChainIndex;
use crate::{LexSuccTree, SlicePoint};
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{DataDeps, ReachingDefs, StmtSet};
use jumpslice_graph::DomTree;
use jumpslice_lang::{Program, StmtId, StmtKind, Structure};
use jumpslice_obs as obs;
use jumpslice_pdg::{ControlDeps, Pdg};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Build counters exposed through [`Analysis::stats`].
///
/// Each counter records how many times the corresponding artifact was
/// *computed* (not how often it was used). The caching contract — one
/// program, one computation — is asserted by the test suite through this
/// probe: repeated `vars_at` slices must leave `reaching_defs` at 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Times the reaching-definitions fixpoint ran.
    pub reaching_defs: usize,
    /// Times the program dependence graph was assembled.
    pub pdg_builds: usize,
    /// Times the postdominator tree was computed.
    pub pdom_builds: usize,
    /// Times the lexical successor tree was built.
    pub lst_builds: usize,
    /// Times the sparse kernel's jump-chain index was built.
    pub chain_index_builds: usize,
}

/// Owned analysis artifacts detached from any program borrow.
///
/// A seed is harvested from a finished [`Analysis`] with
/// [`Analysis::into_seed`] and injected into a fresh one with
/// [`Analysis::with_seed`]. The incremental edit session uses this pair to
/// carry surviving artifacts across a program edit: whatever the edit left
/// valid is moved into the next `Analysis` instead of being recomputed.
///
/// Every field is optional; a missing artifact is simply computed lazily as
/// usual. **Contract:** artifacts injected via `with_seed` must be correct
/// for the program being analyzed — the seed is trusted, and a stale
/// artifact produces wrong slices, not a panic. The differential harness's
/// `incr` mode exists to enforce exactly this.
#[derive(Clone, Debug, Default)]
pub struct AnalysisSeed {
    /// The flowgraph (reused as-is when present).
    pub cfg: Option<Cfg>,
    /// The postdominator tree.
    pub pdom: Option<DomTree>,
    /// The program dependence graph.
    pub pdg: Option<Pdg>,
    /// The lexical successor tree.
    pub lst: Option<LexSuccTree>,
    /// The reaching-definitions solution.
    pub reaching: Option<ReachingDefs>,
    /// The sparse kernel's chain index (opaque; valid only while the jump
    /// structure, postdominators, and lexical successor tree are unchanged).
    pub chain_index: Option<ChainIndex>,
}

impl AnalysisSeed {
    /// How many of the four lazy artifacts are present (the flowgraph is
    /// not counted — it is always built eagerly anyway; the chain index is
    /// not counted either, being derived entirely from the others).
    pub fn reused_phases(&self) -> usize {
        usize::from(self.pdom.is_some())
            + usize::from(self.pdg.is_some())
            + usize::from(self.lst.is_some())
            + usize::from(self.reaching.is_some())
    }
}

/// Everything the algorithms in this crate need, computed per program:
/// the flowgraph eagerly, and the postdominator tree, the (unmodified)
/// program dependence graph, the lexical successor tree, and reaching
/// definitions *lazily, once, on first use*.
///
/// Laziness matters for the cheap algorithms: `conservative_slice`
/// (Figure 13) is advertised by the paper as needing neither the
/// postdominator tree nor the lexical successor tree, and with this struct
/// it no longer pays for the LST (the pdom tree is only forced if a label
/// actually needs re-associating). `Criterion::vars_at` slices share one
/// reaching-definitions fixpoint instead of re-running it per criterion,
/// and the PDG's data half is derived from that same cached fixpoint.
///
/// All lazy state lives in [`OnceLock`]s, so a fully materialized
/// `Analysis` is `Sync` and can be shared by reference across the batch
/// slicer's worker threads.
///
/// Note what is *not* here: no augmented flowgraph and no augmented PDG —
/// the paper's algorithm leaves both graphs intact and only adds the lexical
/// successor tree. The Ball–Horwitz baseline builds its augmented PDG
/// privately in [`crate::baselines`].
#[derive(Debug)]
pub struct Analysis<'p> {
    prog: &'p Program,
    structure: Structure,
    cfg: Cfg,
    /// Per-node entry reachability.
    live: Vec<bool>,
    /// Whether the program contains any `do-while` — the only construct
    /// that can make [`Analysis::dowhile_hazard`] fire. Checked eagerly so
    /// the hazard guard on paper-language programs never forces the LST.
    has_dowhile: bool,
    pdom: OnceLock<DomTree>,
    pdg: OnceLock<Pdg>,
    lst: OnceLock<LexSuccTree>,
    reaching: OnceLock<ReachingDefs>,
    chain_index: OnceLock<ChainIndex>,
    /// Per-do-while body sets (`dowhile_bodies[d]` = statements lexically
    /// inside the do-while `d`), built on first hazard probe.
    dowhile_bodies: OnceLock<Vec<StmtSet>>,
    n_reaching: AtomicUsize,
    n_pdg: AtomicUsize,
    n_pdom: AtomicUsize,
    n_lst: AtomicUsize,
    n_chain: AtomicUsize,
}

impl<'p> Analysis<'p> {
    /// Analyzes `prog`.
    ///
    /// Only the flowgraph and lexical structure are computed here; the
    /// heavier artifacts (PDG, postdominators, LST, reaching definitions)
    /// are built on first use and cached.
    ///
    /// # Panics
    ///
    /// Panics if some reachable statement cannot reach the exit (a genuinely
    /// infinite loop): postdominators — and with them every algorithm in the
    /// paper — are undefined there. Use [`Cfg::all_reach_exit`] to check
    /// first when handling untrusted input.
    pub fn new(prog: &'p Program) -> Analysis<'p> {
        Self::with_seed(prog, AnalysisSeed::default())
    }

    /// Analyzes `prog`, pre-filling the lazy caches with the artifacts in
    /// `seed` (see [`AnalysisSeed`] for the correctness contract). Seeded
    /// artifacts do **not** count as builds in [`Analysis::stats`], so tests
    /// can assert reuse by checking the counters stay at zero.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`Analysis::new`].
    pub fn with_seed(prog: &'p Program, seed: AnalysisSeed) -> Analysis<'p> {
        let structure = Structure::of(prog);
        let cfg = seed.cfg.unwrap_or_else(|| Cfg::build(prog));
        assert!(
            cfg.all_reach_exit(),
            "program has statements that cannot reach the exit; postdominators are undefined"
        );
        let live = cfg.reachable();
        let has_dowhile = prog
            .stmt_ids()
            .any(|s| matches!(prog.stmt(s).kind, StmtKind::DoWhile { .. }));
        let a = Analysis {
            prog,
            structure,
            cfg,
            live,
            has_dowhile,
            pdom: OnceLock::new(),
            pdg: OnceLock::new(),
            lst: OnceLock::new(),
            reaching: OnceLock::new(),
            chain_index: OnceLock::new(),
            dowhile_bodies: OnceLock::new(),
            n_reaching: AtomicUsize::new(0),
            n_pdg: AtomicUsize::new(0),
            n_pdom: AtomicUsize::new(0),
            n_lst: AtomicUsize::new(0),
            n_chain: AtomicUsize::new(0),
        };
        if let Some(x) = seed.pdom {
            let _ = a.pdom.set(x);
        }
        if let Some(x) = seed.pdg {
            let _ = a.pdg.set(x);
        }
        if let Some(x) = seed.lst {
            let _ = a.lst.set(x);
        }
        if let Some(x) = seed.reaching {
            let _ = a.reaching.set(x);
        }
        if let Some(x) = seed.chain_index {
            let _ = a.chain_index.set(x);
        }
        a
    }

    /// Consumes the analysis, harvesting every materialized artifact (plus
    /// the flowgraph) into an owned [`AnalysisSeed`]. Artifacts never forced
    /// come back `None`.
    pub fn into_seed(self) -> AnalysisSeed {
        AnalysisSeed {
            cfg: Some(self.cfg),
            pdom: self.pdom.into_inner(),
            pdg: self.pdg.into_inner(),
            lst: self.lst.into_inner(),
            reaching: self.reaching.into_inner(),
            chain_index: self.chain_index.into_inner(),
        }
    }

    /// The analyzed program.
    pub fn prog(&self) -> &'p Program {
        self.prog
    }

    /// Lexical-structure queries.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The flowgraph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The postdominator tree of the flowgraph (computed on first use).
    pub fn pdom(&self) -> &DomTree {
        self.cache_probe(obs::Artifact::Pdom, self.pdom.get().is_some());
        self.pdom.get_or_init(|| {
            self.n_pdom.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::Postdominators);
            self.cfg.postdominators()
        })
    }

    /// The (unaugmented) program dependence graph (computed on first use;
    /// its data half reuses the cached reaching-definitions fixpoint).
    pub fn pdg(&self) -> &Pdg {
        self.cache_probe(obs::Artifact::Pdg, self.pdg.get().is_some());
        self.pdg.get_or_init(|| {
            self.n_pdg.fetch_add(1, Ordering::Relaxed);
            let reaching = self.reaching();
            let _t = obs::phase(obs::Phase::PdgBuild);
            let data = DataDeps::from_reaching(self.prog, &self.cfg, reaching);
            let control = ControlDeps::compute(self.prog, &self.cfg);
            Pdg::from_parts(data, control)
        })
    }

    /// The lexical successor tree (computed on first use).
    pub fn lst(&self) -> &LexSuccTree {
        self.cache_probe(obs::Artifact::Lst, self.lst.get().is_some());
        self.lst.get_or_init(|| {
            self.n_lst.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::LstBuild);
            LexSuccTree::build(self.prog, &self.structure)
        })
    }

    /// The reaching-definitions fixpoint (computed on first use). Shared by
    /// every `vars_at` criterion and by the PDG's data-dependence half.
    pub fn reaching(&self) -> &ReachingDefs {
        self.cache_probe(obs::Artifact::ReachingDefs, self.reaching.get().is_some());
        self.reaching.get_or_init(|| {
            self.n_reaching.fetch_add(1, Ordering::Relaxed);
            let _t = obs::phase(obs::Phase::ReachingDefs);
            ReachingDefs::compute(self.prog, &self.cfg)
        })
    }

    /// The sparse Figure-7 kernel's flattened jump-chain index (computed on
    /// first use; forces the postdominator tree, and — when the program has
    /// any live unconditional jump — the lexical successor tree).
    pub(crate) fn chain_index(&self) -> &ChainIndex {
        self.cache_probe(obs::Artifact::ChainIndex, self.chain_index.get().is_some());
        self.chain_index.get_or_init(|| {
            self.n_chain.fetch_add(1, Ordering::Relaxed);
            ChainIndex::build(self)
        })
    }

    /// The set of statements lexically inside do-while `d` (empty for any
    /// other statement). Built once for all do-whiles on first use.
    pub(crate) fn dowhile_body(&self, d: StmtId) -> &StmtSet {
        let bodies = self.dowhile_bodies.get_or_init(|| {
            let n = self.prog.len();
            let mut out = vec![StmtSet::with_capacity(0); n];
            // One ancestor walk per statement instead of one full program
            // scan per do-while.
            for s in self.prog.stmt_ids() {
                let mut cur = self.structure.parent(s);
                while let Some(t) = cur {
                    if matches!(self.prog.stmt(t).kind, StmtKind::DoWhile { .. }) {
                        out[t.index()].insert(s);
                    }
                    cur = self.structure.parent(t);
                }
            }
            out
        });
        &bodies[d.index()]
    }

    /// Emits one cache hit/miss event for an artifact accessor. `hit` is
    /// sampled *before* `get_or_init` runs, so the request that triggers the
    /// computation reports a miss.
    fn cache_probe(&self, artifact: obs::Artifact, hit: bool) {
        obs::record(|| obs::Event::Cache { artifact, hit });
    }

    /// How many times each lazy artifact has been computed so far. The
    /// caching contract is "at most once per program"; tests hold this
    /// probe against workloads that used to recompute per criterion.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            reaching_defs: self.n_reaching.load(Ordering::Relaxed),
            pdg_builds: self.n_pdg.load(Ordering::Relaxed),
            pdom_builds: self.n_pdom.load(Ordering::Relaxed),
            lst_builds: self.n_lst.load(Ordering::Relaxed),
            chain_index_builds: self.n_chain.load(Ordering::Relaxed),
        }
    }

    /// Forces every lazy artifact now. The batch slicer calls this before
    /// fanning out so worker threads share fully materialized state instead
    /// of racing to initialize it (the `OnceLock`s make such races safe,
    /// merely wasteful).
    pub fn warm(&self) {
        let _ = (self.reaching(), self.pdg(), self.pdom(), self.lst());
        let _ = self.chain_index();
    }

    /// Whether `s` is a jump statement (including the fused conditional
    /// goto).
    pub fn is_jump(&self, s: StmtId) -> bool {
        self.prog.stmt(s).kind.is_jump()
    }

    /// The statement a jump transfers control to (`None` = exit). For
    /// `break` that is the statement following the enclosing breakable
    /// construct; for `continue`, the enclosing loop's predicate.
    ///
    /// Returns `None` for non-jumps as well as for `return`; pair with
    /// [`Analysis::is_jump`] when the distinction matters.
    pub fn jump_target(&self, s: StmtId) -> SlicePoint {
        match &self.prog.stmt(s).kind {
            StmtKind::Goto { target } | StmtKind::CondGoto { target, .. } => {
                self.prog.label_target(*target)
            }
            StmtKind::Break => {
                let b = self
                    .structure
                    .enclosing_breakable(s)
                    .expect("validated: break inside breakable");
                self.lst().immediate(b)
            }
            StmtKind::Continue => self.structure.enclosing_loop(s),
            StmtKind::Return { .. } => None,
            _ => None,
        }
    }

    /// The nearest postdominator of `s` that is in `slice` (`None` = exit,
    /// which is implicitly in every slice).
    pub fn nearest_pdom_in(&self, s: StmtId, slice: &StmtSet) -> SlicePoint {
        let node = self.cfg.node(s);
        for a in self.pdom().ancestors(node) {
            if a == self.cfg.exit() {
                return None;
            }
            if let Some(t) = self.cfg.stmt(a) {
                if slice.contains(t) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// The nearest lexical successor of `s` that is in `slice` (`None` =
    /// exit).
    pub fn nearest_lexsucc_in(&self, s: StmtId, slice: &StmtSet) -> SlicePoint {
        self.lst().nearest_where(s, |t| slice.contains(t))
    }

    /// Extension guard for `do-while`, a construct outside the paper's
    /// language: walking the lexical-successor chain from jump `j` toward
    /// its nearest in-slice successor, returns `true` if the walk passes
    /// through a `do-while` that is *not* in the slice but whose body
    /// contains slice statements.
    ///
    /// Deleting such a jump makes control fall into the do-while's
    /// *condition*, which may loop back and re-execute the in-slice body —
    /// even when the condition was dead code in the original program (a
    /// body ending in `break`). The paper's npd-vs-nls test cannot see
    /// this because a do-while's entry (its body) differs from its
    /// flowgraph node (its condition); for the paper's own constructs the
    /// guard never fires — and for programs without any `do-while` it
    /// returns immediately, without forcing the lexical successor tree.
    pub fn dowhile_hazard(&self, j: StmtId, slice: &StmtSet) -> bool {
        if !self.has_dowhile {
            return false;
        }
        let mut prev = j;
        for t in self.lst().successors(j) {
            if slice.contains(t) {
                return false;
            }
            // Only an arrival *from inside the body* lands on the loop
            // condition (the last-body-statement rule); reaching a do-while
            // from outside enters its body, which is harmless.
            if matches!(self.prog.stmt(t).kind, StmtKind::DoWhile { .. })
                && self.structure.contains(t, prev)
                && self.dowhile_body(t).intersects(slice)
            {
                return true;
            }
            prev = t;
        }
        false
    }

    /// Whether `s` is reachable from the program entry. Dead statements are
    /// never considered for slice inclusion: they cannot execute, and
    /// including one without its (removed) guards would change the residual
    /// program's flow.
    pub fn is_live(&self, s: StmtId) -> bool {
        self.live[self.cfg.node(s).index()]
    }

    /// *Unconditional* jump statements in preorder of the postdominator
    /// tree — the visit order and candidate set of the paper's Figure 7.
    ///
    /// Conditional jumps are deliberately absent: §3 handles them through
    /// the conventional algorithm's adaptation (the fused conditional goto
    /// is included exactly when its predicate is), and the traversal
    /// question is posed only for unconditional jumps. Examining fused
    /// conditional gotos here would make the iteration order-dependent and
    /// strictly coarser than Ball–Horwitz (an early npd ≠ nls judgement can
    /// be invalidated by later closure additions). Dead jumps are skipped.
    pub fn jumps_in_pdom_preorder(&self) -> Vec<StmtId> {
        self.pdom()
            .preorder()
            .filter_map(|n| self.cfg.stmt(n))
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }

    /// Unconditional jump statements in preorder of the lexical successor
    /// tree — the alternative driver the paper mentions; used by the
    /// ablation bench. Dead jumps are skipped.
    pub fn jumps_in_lst_preorder(&self) -> Vec<StmtId> {
        self.lst()
            .preorder()
            .into_iter()
            .filter(|&s| self.prog.stmt(s).kind.is_unconditional_jump() && self.is_live(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn jump_targets() {
        let p = parse(
            "while (c) {
               if (a) break;
               if (b) continue;
               goto OUT;
             }
             OUT: write(x);
             return;",
        )
        .unwrap();
        let a = Analysis::new(&p);
        // Lines: 1 while, 2 if, 3 break, 4 if, 5 continue, 6 goto, 7 write,
        // 8 return.
        assert_eq!(a.jump_target(p.at_line(3)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(5)), Some(p.at_line(1)));
        assert_eq!(a.jump_target(p.at_line(6)), Some(p.at_line(7)));
        assert_eq!(a.jump_target(p.at_line(8)), None);
        assert_eq!(a.jump_target(p.at_line(7)), None, "non-jump");
    }

    #[test]
    fn break_at_end_of_program_targets_exit() {
        let p = parse("while (c) { break; }").unwrap();
        let a = Analysis::new(&p);
        assert_eq!(a.jump_target(p.at_line(2)), None);
    }

    #[test]
    fn nearest_queries() {
        let p = parse("a = 1; b = 2; c = 3; d = 4;").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(3)].into_iter().collect();
        assert_eq!(a.nearest_pdom_in(p.at_line(1), &slice), Some(p.at_line(3)));
        assert_eq!(
            a.nearest_lexsucc_in(p.at_line(1), &slice),
            Some(p.at_line(3))
        );
        assert_eq!(
            a.nearest_pdom_in(p.at_line(3), &slice),
            None,
            "proper ancestors only"
        );
        assert_eq!(
            a.nearest_pdom_in(p.at_line(4), &slice),
            None,
            "falls to exit"
        );
    }

    #[test]
    #[should_panic(expected = "cannot reach the exit")]
    fn infinite_loop_rejected() {
        let p = parse("L: goto L;").unwrap();
        let _ = Analysis::new(&p);
    }

    #[test]
    fn jump_orders_cover_unconditional_jumps_only() {
        let p = parse("L3: if (eof()) goto L14; goto L3; L14: write(x);").unwrap();
        let a = Analysis::new(&p);
        // The fused conditional goto on line 1 is handled by the
        // conventional adaptation, not the traversal; only `goto L3` is a
        // traversal candidate.
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(2)]);
        assert_eq!(a.jumps_in_lst_preorder(), vec![p.at_line(2)]);
    }

    #[test]
    fn dead_jumps_excluded_from_orders() {
        let p = parse("goto END; goto END; END: write(x);").unwrap();
        let a = Analysis::new(&p);
        assert!(!a.is_live(p.at_line(2)), "second goto is dead");
        assert_eq!(a.jumps_in_pdom_preorder(), vec![p.at_line(1)]);
    }

    #[test]
    fn lazy_artifacts_compute_once() {
        let p = parse("read(c); while (c) { read(c); } write(c);").unwrap();
        let a = Analysis::new(&p);
        assert_eq!(a.stats(), AnalysisStats::default(), "nothing forced yet");
        for _ in 0..5 {
            let _ = a.pdg();
            let _ = a.pdom();
            let _ = a.lst();
            let _ = a.reaching();
        }
        let s = a.stats();
        assert_eq!(
            s,
            AnalysisStats {
                reaching_defs: 1,
                pdg_builds: 1,
                pdom_builds: 1,
                lst_builds: 1,
                chain_index_builds: 0,
            },
            "each artifact computed exactly once"
        );
        for _ in 0..5 {
            let _ = a.chain_index();
        }
        assert_eq!(a.stats().chain_index_builds, 1);
    }

    #[test]
    fn dowhile_body_sets_match_structure_contains() {
        let p = parse(
            "read(x);
             do { x = x + 1; do { y = 2; } while (y); } while (x < 3);
             write(x);",
        )
        .unwrap();
        let a = Analysis::new(&p);
        for t in p.stmt_ids() {
            let body = a.dowhile_body(t);
            for s in p.stmt_ids() {
                assert_eq!(
                    body.contains(s),
                    matches!(p.stmt(t).kind, StmtKind::DoWhile { .. })
                        && a.structure().contains(t, s),
                    "body set of line {} at line {}",
                    p.line_of(t),
                    p.line_of(s)
                );
            }
        }
    }

    /// The satellite fix pinned: the hazard guard answers through the
    /// precomputed body bitset exactly as the old O(|slice|) scan did, on
    /// every slice state of a program where the hazard genuinely fires
    /// (break inside a do-while, body statements sliced, loop head not).
    #[test]
    fn dowhile_hazard_matches_linear_scan() {
        let p = parse("read(x); do { x = x + 1; if (c) break; y = 2; } while (x < 10); write(y);")
            .unwrap();
        let a = Analysis::new(&p);
        let brk = p.at_line(5);
        let old_scan = |j: StmtId, slice: &StmtSet| -> bool {
            let mut prev = j;
            for t in a.lst().successors(j) {
                if slice.contains(t) {
                    return false;
                }
                if matches!(p.stmt(t).kind, StmtKind::DoWhile { .. })
                    && a.structure().contains(t, prev)
                    && slice.iter().any(|s| a.structure().contains(t, s))
                {
                    return true;
                }
                prev = t;
            }
            false
        };
        let n = p.len();
        let mut fired = false;
        for mask in 0u32..(1 << n) {
            let slice: StmtSet = p
                .stmt_ids()
                .filter(|s| mask & (1 << s.index()) != 0)
                .collect();
            let got = a.dowhile_hazard(brk, &slice);
            assert_eq!(got, old_scan(brk, &slice), "slice mask {mask:#b}");
            fired |= got;
        }
        assert!(fired, "the hazard case is actually exercised");
    }

    #[test]
    fn dowhile_hazard_short_circuits_without_dowhile() {
        let p = parse("x = 1; goto L; y = 2; L: write(x);").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(4)].into_iter().collect();
        assert!(!a.dowhile_hazard(p.at_line(2), &slice));
        assert_eq!(a.stats().lst_builds, 0, "no LST forced by the fast path");
    }
}
