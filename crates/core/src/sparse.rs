//! The sparse, change-driven Figure-7 kernel.
//!
//! The dense loop in `agrawal::figure7_reference` re-tests *every*
//! out-of-slice jump on *every* round, and each test walks the
//! postdominator tree and the lexical successor tree node by node —
//! O(rounds × jumps × tree-depth) of pointer chasing. But a jump's test is
//! a pure function of `chain ∩ slice`, where `chain` is the fixed set of
//! statements on its pdom-ancestor and LST-successor paths (plus, for the
//! do-while guard, the bodies of the do-whiles those paths cross). The
//! slice only grows, so a jump whose chain the latest admissions did not
//! touch would answer exactly as it did last time — necessarily "no", or
//! it would already be in the slice.
//!
//! This module exploits that in two layers:
//!
//! * [`ChainIndex`] captures each live unconditional jump's two chains as
//!   per-statement parent arrays (chains share suffixes in both trees)
//!   plus per-chain span-trimmed masks, so "nearest pdom/lexical successor
//!   *in the slice*" becomes a word-parallel `mask ∩ slice` probe (usually
//!   answering `None` immediately) followed by a short parent-array walk;
//!   and it inverts the chains into `affected`: statement → the jumps
//!   whose test that statement can change.
//! * [`figure7_sparse`] replays the reference loop's rounds, but each round
//!   only re-tests the *dirty* jumps — those whose chains intersect the
//!   delta of statements admitted since their last test — in the same
//!   visit-order rank. Deltas flow out of the dependence closures
//!   (`Pdg::backward_closure_delta`), and a dirty jump discovered at a rank
//!   the current round already passed is deferred to the next round,
//!   exactly when the dense loop would re-test it. Admission order, rounds,
//!   emitted events, provenance, `traversals`: all bit-identical.
//!
//! Complexity: O(admissions × affected-jumps) probe work instead of
//! O(rounds × jumps × depth); the confirming final round costs only the
//! (empty) worklist check instead of a full traversal.

use crate::provenance::Recorder;
use crate::wire::{self, Reader};
use crate::{reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_dataflow::{BitSet, StmtSet};
use jumpslice_lang::{StmtId, StmtKind};
use jumpslice_obs as obs;
use std::cell::RefCell;

/// Sentinel for "statement is not an indexed jump" in [`ChainIndex`].
const NO_CHAIN: u32 = u32::MAX;

/// Sentinel for "the chain ends here (exit)" in the parent arrays.
const NO_STMT: u32 = u32::MAX;

/// Checked narrowing for the indices the chain index stores as `u32`
/// (statement ids in the parent arrays, chain and body ids, visit-order
/// ranks). `u32::MAX` itself is excluded: it is the [`NO_STMT`]/
/// [`NO_CHAIN`] sentinel, so a silent `as u32` truncation — or an exact
/// collision with the sentinel — would corrupt the chain walks instead of
/// failing. No real program gets near 2³²−1 statements, so this panics
/// rather than plumbing a `Result` through the builder.
#[inline]
fn index_u32(i: usize, what: &str) -> u32 {
    assert!(
        i < NO_STMT as usize,
        "chain index overflow: {what} {i} does not fit the u32 parent arrays \
         (max supported: {})",
        NO_STMT - 1
    );
    i as u32
}

/// A span-trimmed statement mask: `words[i]` covers statement indices
/// `(off + i) * 64 ..`, with leading and trailing zero words dropped.
/// Chains occupy a contiguous tail of the program on goto-heavy inputs, so
/// probing a full-width [`StmtSet`] would wade through the zero prefix on
/// every test; trimming makes the common dense-slice probe O(1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Mask {
    off: usize,
    words: Vec<u64>,
}

impl Mask {
    fn from_set(set: &StmtSet) -> Mask {
        let w = set.words();
        let Some(first) = w.iter().position(|&x| x != 0) else {
            return Mask::default();
        };
        let last = w.iter().rposition(|&x| x != 0).expect("some word is set");
        Mask {
            off: first,
            words: w[first..=last].to_vec(),
        }
    }

    /// Whether the mask shares a statement with `slice`, scanning only the
    /// mask's own span.
    fn intersects(&self, slice: &StmtSet) -> bool {
        match slice.words().get(self.off..) {
            Some(sw) => self.words.iter().zip(sw).any(|(a, b)| a & b != 0),
            None => false,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_len(out, self.off);
        wire::put_len(out, self.words.len());
        for &w in &self.words {
            wire::put_u64(out, w);
        }
    }

    /// Decodes a mask whose span must fit a statement universe of
    /// `stmt_words` words; a span past that bound is malformed.
    fn decode_from(r: &mut Reader<'_>, stmt_words: usize) -> Option<Mask> {
        let off = r.len(stmt_words)?;
        let n = r.len(stmt_words - off)?;
        let raw = r.bytes(n.checked_mul(8)?)?;
        let words = raw
            .chunks_exact(8)
            .map(|w| u64::from_le_bytes(w.try_into().expect("chunks_exact(8)")))
            .collect();
        Some(Mask { off, words })
    }
}

/// Flattened per-jump chain data, built once per program and cached on
/// [`Analysis`] (see `Analysis::chain_index`).
///
/// Opaque outside this crate: it appears in [`crate::AnalysisSeed`] so the
/// incremental edit session can carry it across edits that leave the jump
/// structure, postdominators, and lexical successor tree intact, but its
/// contents are an implementation detail of the sparse kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainIndex {
    /// The indexed jumps — every live unconditional jump, in pdom preorder.
    /// A chain id is an index into this (and every per-chain) vector.
    jumps: Vec<StmtId>,
    /// Statement index → chain id ([`NO_CHAIN`] for non-jumps).
    chain_of: Vec<u32>,
    /// Statement index → the next statement-bearing proper pdom ancestor
    /// ([`NO_STMT`] = the exit). Chains share suffixes in the pdom tree, so
    /// one parent array replaces per-jump chain vectors: a chain is the
    /// walk `pnext[j]`, `pnext[pnext[j]]`, … Filled only along the paths
    /// from indexed jumps; untouched entries stay [`NO_STMT`], which a walk
    /// reads as "exit" and never follows further.
    pnext: Vec<u32>,
    /// Statement index → the immediate lexical successor ([`NO_STMT`] =
    /// the exit); the LST's own parent pointers, re-indexed by statement.
    lnext: Vec<u32>,
    /// Per chain: the pdom-chain statements as a mask for the word-parallel
    /// "does the slice touch this chain at all?" probe.
    pdom_masks: Vec<Mask>,
    /// Per chain: the lexical-successor chain as a mask.
    lst_masks: Vec<Mask>,
    /// Statement index → the nearest statement at-or-after it on the
    /// lexical-successor chain whose outgoing edge enters a do-while *from
    /// inside its body* (the hazard guard's candidate shape — a static
    /// property of the edge), or [`NO_STMT`]. Chains share suffixes, so one
    /// skip pointer per statement replaces a candidate list per chain.
    hz_skip: Vec<u32>,
    /// Statement index → the body index of that candidate edge's do-while
    /// (meaningful only where `hz_skip[s] == s`).
    hz_body: Vec<u32>,
    /// The do-while body sets the hazard candidates refer to.
    bodies: Vec<Mask>,
    /// Per chain: everything that can change the jump's test — both chains
    /// plus the candidate bodies — as one mask, for the O(span words) "does
    /// this slice touch the jump at all?" seed probe.
    touch_masks: Vec<Mask>,
    /// Statement index → the chain ids whose jump test can change when this
    /// statement enters the slice (`touch_masks` inverted), as a bitset over
    /// chain ids so delta dirtying is a word-parallel union.
    affected: Vec<BitSet>,
}

impl ChainIndex {
    /// Builds the index; forces the postdominator tree and (when the
    /// program has any indexed jump) the lexical successor tree.
    pub(crate) fn build(a: &Analysis<'_>) -> ChainIndex {
        let _t = obs::phase(obs::Phase::ChainIndexBuild);
        let prog = a.prog();
        let n = prog.len();
        let jumps = a.jumps_in_pdom_preorder();

        let mut chain_of = vec![NO_CHAIN; n];
        let mut pdom_masks = Vec::with_capacity(jumps.len());
        let mut lst_masks = Vec::with_capacity(jumps.len());
        let mut touch_masks = Vec::with_capacity(jumps.len());
        // Full-width body sets kept through the build for the touch unions;
        // only the trimmed masks survive into the index.
        let mut body_sets: Vec<StmtSet> = Vec::new();
        let mut body_of: Vec<u32> = vec![NO_CHAIN; n];
        let mut pnext = vec![NO_STMT; n];
        let mut lnext = vec![NO_STMT; n];
        let mut hz_skip = vec![NO_STMT; n];
        let mut hz_body = vec![NO_CHAIN; n];
        let mut chain_stmts = 0u64;

        if jumps.is_empty() {
            // Never force the pdom tree or the LST for a jump-free program.
            return ChainIndex {
                jumps,
                chain_of,
                pnext,
                lnext,
                pdom_masks,
                lst_masks,
                hz_skip,
                hz_body,
                bodies: Vec::new(),
                touch_masks,
                affected: Vec::new(),
            };
        }

        let cfg = a.cfg();
        let pdom = a.pdom();
        let lst = a.lst();

        // Parent arrays. The LST hands its parent pointers over directly;
        // pdom chains are filled by walking up from each jump, stopping as
        // soon as the walk enters territory an earlier jump already mapped
        // (chains in a tree share suffixes), so the total is O(distinct
        // chain statements), not O(sum of chain lengths).
        for s in prog.stmt_ids() {
            lnext[s.index()] = match lst.immediate(s) {
                Some(t) => index_u32(t.index(), "statement index"),
                None => NO_STMT,
            };
        }
        for &j in jumps.iter() {
            let mut prev = j;
            for anc in pdom.ancestors(cfg.node(j)) {
                if anc == cfg.exit() {
                    break;
                }
                let Some(t) = cfg.stmt(anc) else { continue };
                pnext[prev.index()] = index_u32(t.index(), "statement index");
                prev = t;
                if pnext[prev.index()] != NO_STMT {
                    break;
                }
            }
        }

        // Chain masks by memoized suffix-sharing DP: the mask of a
        // statement is its parent's mask plus the parent — one word-parallel
        // copy per distinct chain statement instead of per-element inserts
        // per jump.
        let mut pmask_memo: Vec<Option<StmtSet>> = vec![None; n];
        let mut lmask_memo: Vec<Option<StmtSet>> = vec![None; n];
        // Hazard DP over the LST: whether a chain step enters a do-while
        // from inside its body depends only on the edge, and every statement
        // has exactly one outgoing chain edge, so candidacy is a
        // per-statement fact. `hz_skip[s]` skips to the nearest candidate
        // at-or-after `s` — suffix-shared across chains with no list copies.
        let mut hz_done = vec![false; n];
        let mut path: Vec<StmtId> = Vec::new();
        let mut touch_sets: Vec<StmtSet> = Vec::with_capacity(jumps.len());

        for (c, &j) in jumps.iter().enumerate() {
            chain_of[j.index()] = index_u32(c, "chain id");

            chain_mask(j, &pnext, &mut pmask_memo, &mut path, n);
            chain_mask(j, &lnext, &mut lmask_memo, &mut path, n);

            // Hazard skip pointers, deepest unresolved statement first.
            path.clear();
            let mut cur = j;
            while !hz_done[cur.index()] {
                path.push(cur);
                let t = lnext[cur.index()];
                if t == NO_STMT {
                    break;
                }
                cur = StmtId::from_index(t as usize);
            }
            while let Some(u) = path.pop() {
                let t = lnext[u.index()];
                hz_skip[u.index()] = if t == NO_STMT {
                    NO_STMT
                } else {
                    let t = StmtId::from_index(t as usize);
                    if matches!(prog.stmt(t).kind, StmtKind::DoWhile { .. })
                        && a.dowhile_body(t).contains(u)
                    {
                        hz_body[u.index()] = if body_of[t.index()] == NO_CHAIN {
                            let idx = index_u32(body_sets.len(), "do-while body id");
                            body_of[t.index()] = idx;
                            body_sets.push(a.dowhile_body(t).clone());
                            idx
                        } else {
                            body_of[t.index()]
                        };
                        index_u32(u.index(), "statement index")
                    } else {
                        hz_skip[t.index()]
                    }
                };
                hz_done[u.index()] = true;
            }

            let pm = pmask_memo[j.index()].as_ref().expect("just ensured");
            let lm = lmask_memo[j.index()].as_ref().expect("just ensured");
            chain_stmts += (pm.len() + lm.len()) as u64;

            let mut touch = pm.clone();
            touch.union_with(lm);
            let mut v = hz_skip[j.index()];
            while v != NO_STMT {
                touch.union_with(&body_sets[hz_body[v as usize] as usize]);
                v = hz_skip[lnext[v as usize] as usize];
            }
            touch_masks.push(Mask::from_set(&touch));
            touch_sets.push(touch);
            pdom_masks.push(Mask::from_set(pm));
            lst_masks.push(Mask::from_set(lm));
        }
        let bodies = body_sets.iter().map(Mask::from_set).collect();

        // `affected` is the touch matrix transposed (statement → chains),
        // produced 64×64 bit-block at a time instead of bit-by-bit.
        let chain_words = jumps.len().div_ceil(64);
        let stmt_words = n.div_ceil(64);
        let mut aff_words: Vec<Vec<u64>> = vec![vec![0; chain_words]; n];
        let mut block = [0u64; 64];
        for cb in 0..chain_words {
            for w in 0..stmt_words {
                block.fill(0);
                let mut any = false;
                for (r, set) in touch_sets[cb * 64..].iter().take(64).enumerate() {
                    let v = set.words().get(w).copied().unwrap_or(0);
                    block[r] = v;
                    any |= v != 0;
                }
                if !any {
                    continue;
                }
                // transpose64 works in MSB-first row order; bracketing it
                // with row reversals yields the LSB-first transpose
                // (bit b of row r → bit r of row b).
                block.reverse();
                transpose64(&mut block);
                block.reverse();
                for (b, &v) in block.iter().enumerate() {
                    if v != 0 {
                        aff_words[w * 64 + b][cb] = v;
                    }
                }
            }
        }
        let affected: Vec<BitSet> = aff_words
            .into_iter()
            .map(|ws| BitSet::from_words(jumps.len(), ws))
            .collect();

        obs::record(|| obs::Event::Count {
            name: "sparse.chains",
            value: jumps.len() as u64,
        });
        obs::record(|| obs::Event::Count {
            name: "sparse.chain_stmts",
            value: chain_stmts,
        });

        ChainIndex {
            jumps,
            chain_of,
            pnext,
            lnext,
            pdom_masks,
            lst_masks,
            hz_skip,
            hz_body,
            bodies,
            touch_masks,
            affected,
        }
    }

    /// Serializes the index for the analysis snapshot store. The layout is
    /// private to this crate; [`ChainIndex::decode_from`] is the only
    /// reader.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        let n = self.chain_of.len();
        wire::put_len(out, n);
        wire::put_len(out, self.jumps.len());
        for &j in &self.jumps {
            wire::put_u32(out, index_u32(j.index(), "statement index"));
        }
        for arr in [
            &self.chain_of,
            &self.pnext,
            &self.lnext,
            &self.hz_skip,
            &self.hz_body,
        ] {
            debug_assert_eq!(arr.len(), n);
            for &v in arr.iter() {
                wire::put_u32(out, v);
            }
        }
        wire::put_len(out, self.bodies.len());
        for group in [
            &self.pdom_masks,
            &self.lst_masks,
            &self.touch_masks,
            &self.bodies,
        ] {
            for m in group.iter() {
                m.encode_into(out);
            }
        }
        wire::put_len(out, self.affected.len());
        for set in &self.affected {
            set.encode_into(out);
        }
    }

    /// Decodes an index for a program of `n` statements, validating every
    /// stored index against its array's bounds (sentinels pass through).
    /// `None` means the bytes are malformed — the caller falls back to
    /// rebuilding from source. Deeper cross-array invariants are not
    /// re-derived here; they are covered by the snapshot layer's
    /// whole-record checksum.
    pub(crate) fn decode_from(r: &mut Reader<'_>, n: usize) -> Option<ChainIndex> {
        fn u32_array(r: &mut Reader<'_>, len: usize, bound: usize) -> Option<Vec<u32>> {
            (0..len)
                .map(|_| {
                    let v = r.u32()?;
                    (v == u32::MAX || (v as usize) < bound).then_some(v)
                })
                .collect()
        }
        fn masks(r: &mut Reader<'_>, len: usize, stmt_words: usize) -> Option<Vec<Mask>> {
            (0..len).map(|_| Mask::decode_from(r, stmt_words)).collect()
        }

        if r.len(n)? != n {
            return None;
        }
        let jc = r.len(n)?;
        let jumps = (0..jc)
            .map(|_| {
                let v = r.u32()? as usize;
                (v < n).then(|| StmtId::from_index(v))
            })
            .collect::<Option<Vec<StmtId>>>()?;
        let chain_of = u32_array(r, n, jc)?;
        let pnext = u32_array(r, n, n)?;
        let lnext = u32_array(r, n, n)?;
        let hz_skip = u32_array(r, n, n)?;
        // Body ids are bounded by the statement count (one body per
        // distinct do-while); the exact bound is re-checked below once the
        // body count has been read.
        let hz_body = u32_array(r, n, n)?;
        let n_bodies = r.len(n)?;
        if hz_body
            .iter()
            .any(|&v| v != NO_CHAIN && v as usize >= n_bodies)
        {
            return None;
        }
        // A jump's own chain id must round-trip: this pins the jumps/chain_of
        // pair consistent (and in particular distinct) without a second pass.
        if jumps
            .iter()
            .enumerate()
            .any(|(c, j)| chain_of[j.index()] as usize != c)
        {
            return None;
        }
        let stmt_words = n.div_ceil(64);
        let pdom_masks = masks(r, jc, stmt_words)?;
        let lst_masks = masks(r, jc, stmt_words)?;
        let touch_masks = masks(r, jc, stmt_words)?;
        let bodies = masks(r, n_bodies, stmt_words)?;
        let n_affected = r.len(n)?;
        if n_affected != if jc == 0 { 0 } else { n } {
            return None;
        }
        let affected = (0..n_affected)
            .map(|_| {
                let set = r.bitset()?;
                (set.capacity() == jc).then_some(set)
            })
            .collect::<Option<Vec<BitSet>>>()?;
        Some(ChainIndex {
            jumps,
            chain_of,
            pnext,
            lnext,
            pdom_masks,
            lst_masks,
            hz_skip,
            hz_body,
            bodies,
            touch_masks,
            affected,
        })
    }

    /// The chain id of jump `j`, or `None` if `j` is not indexed.
    fn chain(&self, j: StmtId) -> Option<usize> {
        match self.chain_of.get(j.index()) {
            Some(&c) if c != NO_CHAIN => Some(c as usize),
            _ => None,
        }
    }

    /// `Analysis::nearest_pdom_in`, answered by a parent-array walk gated
    /// on the chain mask.
    fn nearest_pdom_in(&self, c: usize, slice: &StmtSet) -> Option<StmtId> {
        nearest_in(self.jumps[c], &self.pnext, &self.pdom_masks[c], slice)
    }

    /// `Analysis::nearest_lexsucc_in`, answered the same way over the LST
    /// parent array.
    fn nearest_lexsucc_in(&self, c: usize, slice: &StmtSet) -> Option<StmtId> {
        nearest_in(self.jumps[c], &self.lnext, &self.lst_masks[c], slice)
    }

    /// `Analysis::dowhile_hazard`, answered from the precomputed skip
    /// pointers and body bitsets. Walks chain statements up to the last
    /// candidate do-while, bailing on the first one already in the slice.
    fn hazard(&self, c: usize, slice: &StmtSet) -> bool {
        let mut v = self.hz_skip[self.jumps[c].index()];
        if v == NO_STMT {
            return false;
        }
        let mut s = self.lnext[self.jumps[c].index()];
        loop {
            // The candidate do-while is `lnext[v]`; every chain statement up
            // to and including it gets the membership check first, in order.
            let d = self.lnext[v as usize];
            loop {
                let t = StmtId::from_index(s as usize);
                if slice.contains(t) {
                    return false;
                }
                let at_dowhile = s == d;
                s = self.lnext[s as usize];
                if at_dowhile {
                    break;
                }
            }
            if self.bodies[self.hz_body[v as usize] as usize].intersects(slice) {
                return true;
            }
            v = self.hz_skip[d as usize];
            if v == NO_STMT {
                return false;
            }
        }
    }
}

/// First statement on `j`'s `next`-chain that is in `slice`, gated by a
/// word-parallel mask probe. `None` means the walk would fall through to
/// the exit.
fn nearest_in(j: StmtId, next: &[u32], mask: &Mask, slice: &StmtSet) -> Option<StmtId> {
    if !mask.intersects(slice) {
        return None;
    }
    let mut s = next[j.index()];
    while s != NO_STMT {
        let t = StmtId::from_index(s as usize);
        if slice.contains(t) {
            return Some(t);
        }
        s = next[s as usize];
    }
    None
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3): afterwards
/// bit `r` of `a[b]` is what bit `b` of `a[r]` was.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Ensures `memo[s]` holds the set of statements on the `next`-chain
/// strictly after `s`, resolving every statement on the path below the
/// first already-resolved one — a suffix-sharing DP where each distinct
/// chain statement costs one word-parallel copy of its parent's mask
/// instead of a per-jump element walk.
fn chain_mask(
    s: StmtId,
    next: &[u32],
    memo: &mut [Option<StmtSet>],
    path: &mut Vec<StmtId>,
    n: usize,
) {
    path.clear();
    let mut cur = s;
    while memo[cur.index()].is_none() {
        path.push(cur);
        let t = next[cur.index()];
        if t == NO_STMT {
            break;
        }
        cur = StmtId::from_index(t as usize);
    }
    while let Some(u) = path.pop() {
        let t = next[u.index()];
        let set = if t == NO_STMT {
            StmtSet::with_capacity(n)
        } else {
            let t = StmtId::from_index(t as usize);
            let mut set = memo[t.index()].as_ref().expect("resolved before u").clone();
            set.insert(t);
            set
        };
        memo[u.index()] = Some(set);
    }
}

/// Per-thread reusable buffers: the closure work/delta vectors and the
/// dirty-rank worklists. Pooled so the batch engine's workers run the whole
/// fixpoint allocation-free after the first criterion.
struct Scratch {
    work: Vec<StmtId>,
    delta: Vec<StmtId>,
    rank_of: Vec<u32>,
    cur: BitSet,
    next: BitSet,
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch {
            work: Vec::new(),
            delta: Vec::new(),
            rank_of: Vec::new(),
            cur: BitSet::new(0),
            next: BitSet::new(0),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Whether [`figure7_sparse`] can honor `jump_order` exactly: every entry
/// must be an indexed jump and appear only once. Both jump orders the crate
/// produces qualify; a hand-rolled order falls back to the dense loop.
pub(crate) fn covers(a: &Analysis<'_>, jump_order: &[StmtId]) -> bool {
    if jump_order.is_empty() {
        return true;
    }
    let ci = a.chain_index();
    if jump_order == ci.jumps {
        // The standard pdom-preorder driver: no per-slice bookkeeping.
        return true;
    }
    let mut seen = BitSet::new(ci.jumps.len());
    jump_order
        .iter()
        .all(|&j| ci.chain(j).is_some_and(|c| seen.insert(c)))
}

/// The sparse Figure-7 kernel. Produces bit-identical results — slice,
/// `traversals`, `moved_labels`, emitted events, recorded provenance — to
/// `agrawal::figure7_reference` on the same inputs; the differential
/// harness's `sparse` mode and `tests/equivalence.rs` hold the two against
/// each other. Callers must check [`covers`] first.
pub(crate) fn figure7_sparse(
    a: &Analysis<'_>,
    crit: &Criterion,
    jump_order: &[StmtId],
    mut rec: Option<&mut Recorder>,
) -> Slice {
    let scratch = SCRATCH.with(|s| s.take());
    let Scratch {
        mut work,
        mut delta,
        mut rank_of,
        mut cur,
        mut next,
    } = scratch;

    let mut stmts = {
        let _t = obs::phase(obs::Phase::ConventionalClosure);
        match rec.as_deref_mut() {
            Some(r) => r.seed_closure(a, crit),
            None => {
                let mut s = StmtSet::with_capacity(a.prog().len());
                // An empty target is trivially dependence-closed, so the
                // routed (possibly condensed) closure applies.
                a.backward_closure_into_closed(crit.seeds(a), &mut s, &mut work);
                s
            }
        }
    };

    let mut traversals = 0usize;
    let mut round: u32 = 0;
    let mut retests = 0u64;
    let mut dirty_marks = 0u64;

    if jump_order.is_empty() {
        // No candidates: only the confirming round runs, as in the dense
        // loop (and without ever building the chain index).
        round += 1;
        {
            let _t = obs::phase_round(obs::Phase::FixpointRound, round);
        }
        obs::record(|| obs::Event::Round {
            algo: "fig7",
            round,
            admitted: 0,
        });
    } else {
        let ci = a.chain_index();

        // The standard driver passes the index's own pdom preorder, making
        // rank ≡ chain id; only an exotic caller-supplied order (e.g. LST
        // preorder) pays for the per-statement rank table.
        let identity = jump_order == ci.jumps;
        if !identity {
            // Visit-order rank per statement; NO_CHAIN = jump outside
            // `jump_order` (possible when the caller passes a subset — such
            // jumps are never tested, exactly as in the dense loop).
            rank_of.clear();
            rank_of.resize(a.prog().len(), NO_CHAIN);
            for (rk, &j) in jump_order.iter().enumerate() {
                rank_of[j.index()] = index_u32(rk, "visit-order rank");
            }
        }

        if cur.capacity() < jump_order.len() {
            cur = BitSet::new(jump_order.len());
            next = BitSet::new(jump_order.len());
        } else {
            // Both drained empty when the previous fixpoint converged; clear
            // anyway in case a panic unwound mid-round.
            cur.clear();
            next.clear();
        }

        // Seed dirtying: the whole conventional closure is one delta against
        // the empty slice. Probing each jump's touch mask against it costs
        // O(jumps × words) — iterating the closure through `affected` would
        // be O(|closure| × jumps) on goto-dense programs, whose chains span
        // most of the program.
        for (rk, &j) in jump_order.iter().enumerate() {
            if stmts.contains(j) {
                continue;
            }
            let c = ci.chain(j).expect("covers() checked");
            if ci.touch_masks[c].intersects(&stmts) {
                dirty_marks += u64::from(next.insert(rk));
            }
        }

        loop {
            round += 1;
            // Cooperative deadline probe at the round boundary; free when
            // no deadline is installed (the default outside the daemon).
            crate::cancel::checkpoint();
            let mut admitted: u32 = 0;
            {
                let _t = obs::phase_round(obs::Phase::FixpointRound, round);
                std::mem::swap(&mut cur, &mut next);
                let mut pos = 0usize;
                while let Some(rk) = cur.next_at_or_after(pos) {
                    crate::cancel::checkpoint();
                    cur.remove(rk);
                    pos = rk;
                    let j = jump_order[rk];
                    if stmts.contains(j) {
                        continue;
                    }
                    retests += 1;
                    let c = ci.chain(j).expect("covers() checked");
                    let npd = ci.nearest_pdom_in(c, &stmts);
                    let nls = ci.nearest_lexsucc_in(c, &stmts);
                    let disagree = npd != nls;
                    if disagree || ci.hazard(c, &stmts) {
                        obs::record(|| obs::Event::JumpAdmitted {
                            algo: "fig7",
                            line: a.prog().line_of(j) as u32,
                            round,
                            reason: if disagree {
                                obs::AdmitReason::PdomLexsuccDisagree {
                                    npd_line: npd.map(|s| a.prog().line_of(s) as u32),
                                    nls_line: nls.map(|s| a.prog().line_of(s) as u32),
                                }
                            } else {
                                obs::AdmitReason::DoWhileHazard
                            },
                        });
                        delta.clear();
                        match rec.as_deref_mut() {
                            Some(r) => r.jump_closure_delta(
                                a,
                                j,
                                round,
                                npd,
                                nls,
                                !disagree,
                                &mut stmts,
                                Some(&mut delta),
                            ),
                            // The slice is closed under dependence at every
                            // admission (same invariant as the dense loop),
                            // so the routed delta closure applies; the
                            // condensed path reports the delta in ascending
                            // order, which the masked unions below absorb.
                            None => a.backward_closure_delta_closed(
                                [j],
                                &mut stmts,
                                &mut work,
                                &mut delta,
                            ),
                        }
                        admitted += 1;
                        // Dirty every jump whose chain the delta touched. A
                        // rank the current round has not reached yet is
                        // tested this round (as the dense loop would);
                        // anything at or before the cursor waits for the
                        // next round (ditto).
                        if identity {
                            // Rank ≡ chain id, so each delta statement's
                            // affected set splits into the two worklists with
                            // four masked word-ops. Already-admitted jumps
                            // may be enqueued; the drain skips them.
                            let before = cur.len() + next.len();
                            for &s in &delta {
                                let m = &ci.affected[s.index()];
                                cur.union_range(m, rk + 1, ci.jumps.len());
                                next.union_range(m, 0, rk + 1);
                            }
                            dirty_marks += (cur.len() + next.len() - before) as u64;
                        } else {
                            for &s in &delta {
                                for c2 in ci.affected[s.index()].iter() {
                                    let j2 = ci.jumps[c2];
                                    let r2 = rank_of[j2.index()];
                                    if r2 == NO_CHAIN || stmts.contains(j2) {
                                        continue;
                                    }
                                    let r2 = r2 as usize;
                                    dirty_marks += u64::from(if r2 > rk {
                                        cur.insert(r2)
                                    } else {
                                        next.insert(r2)
                                    });
                                }
                            }
                        }
                    }
                }
            }
            obs::record(|| obs::Event::Round {
                algo: "fig7",
                round,
                admitted,
            });
            if admitted == 0 {
                break;
            }
            traversals += 1;
        }
    }

    obs::record(|| obs::Event::Count {
        name: "sparse.retests",
        value: retests,
    });
    obs::record(|| obs::Event::Count {
        name: "sparse.dirty_marks",
        value: dirty_marks,
    });

    let moved_labels = {
        let _t = obs::phase(obs::Phase::LabelReassoc);
        reassociate_labels(a, &stmts)
    };

    SCRATCH.with(|s| {
        *s.borrow_mut() = Scratch {
            work,
            delta,
            rank_of,
            cur,
            next,
        }
    });

    Slice {
        stmts,
        moved_labels,
        traversals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agrawal::figure7_reference;
    use crate::{agrawal_slice, agrawal_slice_reference, corpus};
    use jumpslice_lang::parse;

    /// Chain probes answer exactly like the tree walks they replace, at
    /// every slice state reachable by growing the slice one statement at a
    /// time in id order.
    #[test]
    fn chain_probes_match_tree_walks() {
        for p in [
            corpus::fig3(),
            corpus::fig5(),
            corpus::fig8(),
            corpus::fig10(),
            corpus::fig14(),
            corpus::fig16(),
        ] {
            let a = Analysis::new(&p);
            let ci = a.chain_index();
            let mut slice = StmtSet::with_capacity(p.len());
            for grow in std::iter::once(None).chain(p.stmt_ids().map(Some)) {
                if let Some(s) = grow {
                    slice.insert(s);
                }
                for &j in &ci.jumps {
                    let c = ci.chain(j).unwrap();
                    assert_eq!(ci.nearest_pdom_in(c, &slice), a.nearest_pdom_in(j, &slice));
                    assert_eq!(
                        ci.nearest_lexsucc_in(c, &slice),
                        a.nearest_lexsucc_in(j, &slice)
                    );
                    assert_eq!(ci.hazard(c, &slice), a.dowhile_hazard(j, &slice));
                }
            }
        }
    }

    /// The do-while guard fires identically through the candidate/body
    /// probe, on every slice state of a program where it genuinely fires
    /// (break inside a do-while whose body holds slice statements).
    #[test]
    fn hazard_probe_on_dowhile_program() {
        let p = parse("read(x); do { x = x + 1; if (c) break; y = 2; } while (x < 10); write(y);")
            .unwrap();
        let a = Analysis::new(&p);
        let ci = a.chain_index();
        let brk = p.at_line(5);
        let c = ci.chain(brk).expect("break is indexed");
        let n = p.len();
        let mut fired = false;
        for mask in 0u32..(1 << n) {
            let slice: StmtSet = p
                .stmt_ids()
                .filter(|s| mask & (1 << s.index()) != 0)
                .collect();
            let got = ci.hazard(c, &slice);
            assert_eq!(got, a.dowhile_hazard(brk, &slice), "slice mask {mask:#b}");
            fired |= got;
        }
        assert!(fired, "the hazard case is actually exercised");
    }

    /// The transposed `affected` inversion agrees with the touch masks it
    /// was derived from, on a program with more than 64 chains (so the
    /// block transpose crosses a chain-word boundary).
    #[test]
    fn affected_inversion_matches_touch_masks_past_64_chains() {
        let mut src = String::from("read(x);\n");
        for k in 0..70 {
            src.push_str(&format!("goto L{k};\nL{k}: x = x + {k};\n"));
        }
        src.push_str("write(x);");
        let p = parse(&src).unwrap();
        let a = Analysis::new(&p);
        let ci = a.chain_index();
        assert!(ci.jumps.len() > 64, "need a second chain word");
        for s in p.stmt_ids() {
            let single: StmtSet = [s].into_iter().collect();
            for c in 0..ci.jumps.len() {
                assert_eq!(
                    ci.affected[s.index()].contains(c),
                    ci.touch_masks[c].intersects(&single),
                    "stmt {s:?} chain {c}"
                );
            }
        }
    }

    /// Sparse == dense on the paper corpus, through the internal entry
    /// points (the public ones are held together by tests/equivalence.rs).
    #[test]
    fn kernel_matches_reference_on_corpus() {
        for (p, line) in [
            (corpus::fig1(), 12),
            (corpus::fig3(), 15),
            (corpus::fig5(), 14),
            (corpus::fig8(), 15),
            (corpus::fig10(), 9),
            (corpus::fig16(), 10),
        ] {
            let a = Analysis::new(&p);
            let crit = Criterion::at_stmt(p.at_line(line));
            let sparse = agrawal_slice(&a, &crit);
            let dense = agrawal_slice_reference(&a, &crit);
            assert_eq!(sparse, dense, "line {line}");
        }
    }

    /// An LST-preorder driver goes through the sparse kernel too and still
    /// matches the dense loop under the same order.
    #[test]
    fn kernel_matches_reference_under_lst_order() {
        let p = corpus::fig8();
        let a = Analysis::new(&p);
        let order = a.jumps_in_lst_preorder();
        assert!(covers(&a, &order));
        let crit = Criterion::at_stmt(p.at_line(15));
        let sparse = figure7_sparse(&a, &crit, &order, None);
        let dense = figure7_reference(&a, &crit, &order, None);
        assert_eq!(sparse, dense);
    }

    /// The checked narrowing itself: in-range indices pass through, the
    /// sentinel value and anything above it panic with the overflow
    /// message. Exercised on the helper directly — a real ≥4B-statement
    /// program is not constructible in a test.
    #[test]
    fn index_guard_accepts_the_full_sub_sentinel_range() {
        assert_eq!(index_u32(0, "statement index"), 0);
        assert_eq!(
            index_u32((u32::MAX - 1) as usize, "statement index"),
            u32::MAX - 1
        );
    }

    #[test]
    #[should_panic(expected = "chain index overflow")]
    fn index_guard_rejects_the_sentinel_collision() {
        // u32::MAX is exactly NO_STMT/NO_CHAIN: a cast would not even
        // truncate here, it would silently *become* the sentinel.
        index_u32(u32::MAX as usize, "statement index");
    }

    #[test]
    #[should_panic(expected = "chain index overflow")]
    fn index_guard_rejects_truncating_counts() {
        // Only meaningful on 64-bit targets, where the cast used to wrap.
        if usize::BITS <= 32 {
            panic!("chain index overflow: not representable on this target");
        }
        index_u32(u32::MAX as usize + 1, "chain id");
    }

    /// The wire codec reproduces the index field-for-field on jump-heavy,
    /// do-while, and jump-free programs, and rejects truncation at every
    /// prefix length instead of panicking.
    #[test]
    fn chain_index_codec_round_trips_and_rejects_truncation() {
        let dowhile =
            parse("read(x); do { x = x + 1; if (c) break; y = 2; } while (x < 10); write(y);")
                .unwrap();
        let jumpfree = parse("a = 1; write(a);").unwrap();
        for p in [
            corpus::fig3(),
            corpus::fig8(),
            corpus::fig10(),
            dowhile,
            jumpfree,
        ] {
            let a = Analysis::new(&p);
            let ci = a.chain_index();
            let mut bytes = Vec::new();
            ci.encode_into(&mut bytes);

            let mut r = Reader::new(&bytes);
            let back = ChainIndex::decode_from(&mut r, p.len()).expect("well-formed bytes decode");
            assert_eq!(r.remaining(), 0, "codec consumed exactly its record");
            assert_eq!(&back, ci);

            for cut in 0..bytes.len() {
                let mut r = Reader::new(&bytes[..cut]);
                assert_eq!(
                    ChainIndex::decode_from(&mut r, p.len()),
                    None,
                    "truncation at {cut} must be rejected"
                );
            }
            // A mismatched statement count is a stale record, not a panic.
            let mut r = Reader::new(&bytes);
            assert_eq!(ChainIndex::decode_from(&mut r, p.len() + 1), None);
        }
    }

    /// Orders the index cannot honor (duplicates) are detected, not
    /// silently mis-handled.
    #[test]
    fn covers_rejects_duplicates_and_unknown_jumps() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let order = a.jumps_in_pdom_preorder();
        assert!(covers(&a, &order));
        let mut dup = order.clone();
        dup.push(order[0]);
        assert!(!covers(&a, &dup));
        let not_a_jump = vec![p.at_line(1)];
        assert!(!covers(&a, &not_a_jump));
    }
}
