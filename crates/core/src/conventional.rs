//! The conventional slicing algorithm (paper, §2).

use crate::{Analysis, Slice};
use jumpslice_lang::{Name, StmtId};

/// A slicing criterion: a program location plus, optionally, a specific set
/// of variables observed there.
///
/// The paper's examples all slice "with respect to *var* on line *n*" where
/// line *n* is a statement using *var* (typically `write(var)`), which is
/// [`Criterion::at_stmt`]. [`Criterion::vars_at`] is the general Weiser-style
/// pair: the values of the given variables just before the location
/// executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Criterion {
    /// The criterion location.
    pub stmt: StmtId,
    /// The observed variables; `None` observes the statement itself (its
    /// uses and its execution).
    pub vars: Option<Vec<Name>>,
}

impl Criterion {
    /// Slice with respect to a statement: everything that may affect its
    /// execution or the values it uses.
    pub fn at_stmt(stmt: StmtId) -> Criterion {
        Criterion { stmt, vars: None }
    }

    /// Slice with respect to the values of `vars` at `stmt`.
    pub fn vars_at(stmt: StmtId, vars: Vec<Name>) -> Criterion {
        Criterion {
            stmt,
            vars: Some(vars),
        }
    }

    /// The closure seeds this criterion induces: the statement itself, or
    /// the reaching definitions of the named variables at the statement.
    pub fn seeds(&self, a: &Analysis<'_>) -> Vec<StmtId> {
        match &self.vars {
            None => vec![self.stmt],
            Some(vars) => {
                // One fixpoint per program, not per criterion: the analysis
                // caches ReachingDefs and every vars_at slice shares it.
                let rd = a.reaching();
                let node = a.cfg().node(self.stmt);
                let mut seeds = Vec::new();
                for d in rd.reaching_in(node) {
                    let v = a.prog().defs(d).expect("def site");
                    if vars.contains(&v) && !seeds.contains(&d) {
                        seeds.push(d);
                    }
                }
                seeds
            }
        }
    }
}

/// The conventional slicing algorithm: the transitive closure of data and
/// control dependence in the (unmodified) program dependence graph.
///
/// Conditional jumps are handled by the paper's adaptation — `if (c) goto L`
/// is a single fused node, so including the predicate includes the jump.
/// Unconditional jumps are *never* included: nothing is data or control
/// dependent on them. On programs with jumps the result may therefore be
/// incorrect (Figures 3-b, 5-b); that incorrectness is exactly what
/// [`crate::agrawal_slice`] repairs.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{Analysis, Criterion, conventional_slice};
/// use jumpslice_lang::parse;
/// let p = parse("x = 1; y = 2; write(x);")?;
/// let a = Analysis::new(&p);
/// let s = conventional_slice(&a, &Criterion::at_stmt(p.at_line(3)));
/// assert_eq!(s.lines(&p), vec![1, 3]); // y = 2 is irrelevant
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn conventional_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let stmts = {
        let _t = jumpslice_obs::phase(jumpslice_obs::Phase::ConventionalClosure);
        a.backward_closure(crit.seeds(a))
    };
    // The paper's Figure 3-b renders the conventional slice with L14
    // re-associated; doing the same here keeps every slice executable.
    let moved_labels = crate::reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    #[test]
    fn figure_1_slice() {
        // Figure 1: slice on positives at line 12 = lines {2,3,4,5,7,12}.
        let p = parse(crate::corpus::FIG1_SRC).unwrap();
        let a = Analysis::new(&p);
        let s = conventional_slice(&a, &Criterion::at_stmt(p.at_line(12)));
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 12]);
    }

    #[test]
    fn conventional_never_includes_unconditional_jumps() {
        let p = parse(crate::corpus::FIG3_SRC).unwrap();
        let a = Analysis::new(&p);
        let s = conventional_slice(&a, &Criterion::at_stmt(p.at_line(15)));
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 8, 15], "Figure 3-b");
        for st in s.stmts.iter() {
            assert!(
                !p.stmt(st).kind.is_unconditional_jump(),
                "line {} is an unconditional jump",
                p.line_of(st)
            );
        }
    }

    #[test]
    fn vars_at_criterion_uses_reaching_defs() {
        let p = parse("x = 1; y = 2; write(0);").unwrap();
        let a = Analysis::new(&p);
        let x = p.name("x").unwrap();
        let crit = Criterion::vars_at(p.at_line(3), vec![x]);
        let s = conventional_slice(&a, &crit);
        // Only x = 1 affects the value of x at the write; the write itself
        // is not part of a variables-at criterion.
        assert_eq!(s.lines(&p), vec![1]);
    }

    #[test]
    fn vars_at_pulls_controlling_predicates() {
        let p = parse("read(c); if (c) { x = 1; } else { x = 2; } write(0);").unwrap();
        let a = Analysis::new(&p);
        let x = p.name("x").unwrap();
        let s = conventional_slice(&a, &Criterion::vars_at(p.at_line(5), vec![x]));
        assert_eq!(s.lines(&p), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_criterion_variables_give_empty_slice() {
        let p = parse("x = 1; write(x);").unwrap();
        let a = Analysis::new(&p);
        let s = conventional_slice(&a, &Criterion::vars_at(p.at_line(2), vec![]));
        assert!(s.is_empty());
    }
}
