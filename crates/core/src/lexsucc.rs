//! The lexical successor tree (paper, §3).
//!
//! A statement `S'` is the *immediate lexical successor* of `S` if deleting
//! `S` from the program makes control pass to `S'` whenever it reaches the
//! corresponding location. The relation is a tree rooted at the program
//! exit; it is built purely syntax-directedly — the whole point of the
//! paper's algorithm is that this small side structure replaces the
//! flowgraph/PDG modifications Ball–Horwitz and Choi–Ferrante require.

use crate::SlicePoint;
use jumpslice_lang::{Program, StmtId, StmtKind, Structure};

/// The lexical successor tree of a program.
///
/// # Examples
///
/// ```
/// use jumpslice_core::LexSuccTree;
/// use jumpslice_lang::{parse, Structure};
///
/// let p = parse("while (c) { x = 1; y = 2; } write(x);")?;
/// let s = Structure::of(&p);
/// let lst = LexSuccTree::build(&p, &s);
/// // Deleting the last body statement sends control back to the predicate.
/// assert_eq!(lst.immediate(p.at_line(3)), Some(p.at_line(1)));
/// // Deleting the loop itself sends control to the write.
/// assert_eq!(lst.immediate(p.at_line(1)), Some(p.at_line(4)));
/// // The last top-level statement's successor is the exit.
/// assert_eq!(lst.immediate(p.at_line(4)), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct LexSuccTree {
    /// Immediate lexical successor per statement; `None` = exit.
    parent: Vec<SlicePoint>,
}

impl LexSuccTree {
    /// Builds the tree for `prog` (syntax-directed, no flowgraph needed).
    pub fn build(prog: &Program, structure: &Structure) -> LexSuccTree {
        let mut parent = vec![None; prog.len()];
        for s in prog.stmt_ids() {
            parent[s.index()] = Self::successor_of(prog, structure, s);
        }
        LexSuccTree { parent }
    }

    /// Computes the immediate lexical successor of one statement.
    fn successor_of(prog: &Program, st: &Structure, s: StmtId) -> SlicePoint {
        // Inside a switch arm, a last statement falls through into the next
        // arm's first statement (C semantics), so that is where control goes
        // when `s` is deleted.
        if let Some(next) = st.next_in_block(s) {
            return Some(next);
        }
        let mut cur = s;
        loop {
            let Some(p) = st.parent(cur) else {
                return None; // last top-level statement: exit
            };
            match &prog.stmt(p).kind {
                // Deleting the last body statement of a loop hands control
                // back to the loop predicate.
                StmtKind::While { .. } | StmtKind::DoWhile { .. } => return Some(p),
                StmtKind::Switch { arms, .. } => {
                    // `cur` ends some arm: fall through into the next
                    // non-empty arm, else continue past the switch.
                    let arm_idx = arms
                        .iter()
                        .position(|a| a.body.contains(&cur))
                        .expect("statement is in one arm");
                    for arm in &arms[arm_idx + 1..] {
                        if let Some(&first) = arm.body.first() {
                            return Some(first);
                        }
                    }
                    if let Some(next) = st.next_in_block(p) {
                        return Some(next);
                    }
                    cur = p;
                }
                StmtKind::If { .. } => {
                    if let Some(next) = st.next_in_block(p) {
                        return Some(next);
                    }
                    cur = p;
                }
                _ => unreachable!("only compound statements have children"),
            }
        }
    }

    /// The whole parent array, indexed by statement (`None` = exit) — the
    /// snapshot codec reads the tree out through this.
    pub(crate) fn parents(&self) -> &[SlicePoint] {
        &self.parent
    }

    /// Reassembles a tree from its parent array — the snapshot-restore
    /// constructor, inverse of [`LexSuccTree::parents`]. The caller is
    /// responsible for the array describing the program's actual lexical
    /// structure; indices must be in range (the snapshot decoder validates
    /// them before calling).
    pub(crate) fn from_parents(parent: Vec<SlicePoint>) -> LexSuccTree {
        LexSuccTree { parent }
    }

    /// The immediate lexical successor of `s` (`None` = exit).
    pub fn immediate(&self, s: StmtId) -> SlicePoint {
        self.parent[s.index()]
    }

    /// Iterator over the proper lexical successors of `s`, nearest first.
    /// The final implicit element is the exit, which the iterator does not
    /// yield — callers treat exhaustion as "reached exit".
    pub fn successors(&self, s: StmtId) -> Successors<'_> {
        Successors {
            tree: self,
            cur: self.immediate(s),
        }
    }

    /// The nearest lexical successor of `s` satisfying `pred`; `None` means
    /// the walk fell off the end (the exit).
    pub fn nearest_where(&self, s: StmtId, mut pred: impl FnMut(StmtId) -> bool) -> SlicePoint {
        self.successors(s).find(|&x| pred(x))
    }

    /// Whether `anc` is a lexical successor of `s` (strictly).
    pub fn is_successor(&self, anc: StmtId, s: StmtId) -> bool {
        self.successors(s).any(|x| x == anc)
    }

    /// Statements in preorder over the tree (roots are statements whose
    /// immediate successor is the exit, i.e. the tree hangs off the exit).
    ///
    /// The paper notes the Figure 7 traversal may equally be driven by this
    /// order instead of the postdominator tree's; the ablation bench
    /// compares the two.
    pub fn preorder(&self) -> Vec<StmtId> {
        let n = self.parent.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, p) in self.parent.iter().enumerate() {
            match p {
                Some(q) => children[q.index()].push(i),
                None => roots.push(i),
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut stack: Vec<usize> = roots.into_iter().rev().collect();
        while let Some(i) = stack.pop() {
            out.push(StmtId::from_index(i));
            for &c in children[i].iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// Iterator over proper lexical successors, produced by
/// [`LexSuccTree::successors`].
#[derive(Clone, Debug)]
pub struct Successors<'a> {
    tree: &'a LexSuccTree,
    cur: SlicePoint,
}

impl Iterator for Successors<'_> {
    type Item = StmtId;

    fn next(&mut self) -> Option<StmtId> {
        let s = self.cur?;
        self.cur = self.tree.immediate(s);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    fn lst_of(src: &str) -> (Program, LexSuccTree) {
        let p = parse(src).unwrap();
        let s = Structure::of(&p);
        let t = LexSuccTree::build(&p, &s);
        (p, t)
    }

    fn ils(p: &Program, t: &LexSuccTree, line: usize) -> Option<usize> {
        t.immediate(p.at_line(line)).map(|s| p.line_of(s))
    }

    #[test]
    fn flat_program_is_a_chain() {
        // In a jump-free flat program the LST equals the postdominator
        // chain (paper: the two trees coincide without jumps).
        let (p, t) = lst_of("a = 1; b = 2; c = 3;");
        assert_eq!(ils(&p, &t, 1), Some(2));
        assert_eq!(ils(&p, &t, 2), Some(3));
        assert_eq!(ils(&p, &t, 3), None);
    }

    #[test]
    fn flat_goto_program_chain() {
        // Figure 4-d: the LST of the flat goto program is the lexical chain
        // 1 -> 2 -> ... -> 15 -> exit.
        let src = "sum = 0;
                   positives = 0;
                   L3: if (eof()) goto L14;
                   read(x);
                   if (x > 0) goto L8;
                   sum = sum + f1(x);
                   goto L13;
                   L8: positives = positives + 1;
                   if (x % 2 != 0) goto L12;
                   sum = sum + f2(x);
                   goto L13;
                   L12: sum = sum + f3(x);
                   L13: goto L3;
                   L14: write(sum);
                   write(positives);";
        let (p, t) = lst_of(src);
        for line in 1..15 {
            assert_eq!(ils(&p, &t, line), Some(line + 1), "ils of line {line}");
        }
        assert_eq!(ils(&p, &t, 15), None);
    }

    #[test]
    fn figure6d_continue_version() {
        // Figure 5-a / 6-d.
        let src = "sum = 0;
                   positives = 0;
                   while (!eof()) {
                     read(x);
                     if (x <= 0) {
                       sum = sum + f1(x);
                       continue;
                     }
                     positives = positives + 1;
                     if (x % 2 == 0) {
                       sum = sum + f2(x);
                       continue;
                     }
                     sum = sum + f3(x);
                   }
                   write(sum);
                   write(positives);";
        let (p, t) = lst_of(src);
        // Note this source has 15 statements (extra "sum = 0" first), so the
        // paper's line k is our k+1... no: the paper's Figure 5-a also has
        // sum=0 on line 1. Lines: 1 sum, 2 positives, 3 while, 4 read,
        // 5 if, 6 sum, 7 continue, 8 positives, 9 if, 10 sum, 11 continue,
        // 12 sum, 13 write(sum), 14 write(positives).
        assert_eq!(ils(&p, &t, 7), Some(8), "continue falls into positives+=1");
        assert_eq!(ils(&p, &t, 11), Some(12));
        assert_eq!(ils(&p, &t, 12), Some(3), "last body statement -> loop");
        assert_eq!(ils(&p, &t, 3), Some(13), "loop -> write(sum)");
        assert_eq!(ils(&p, &t, 14), None);
    }

    #[test]
    fn switch_arm_fallthrough() {
        let src = "switch (c) {
                     case 1: x = 1; break;
                     case 2: y = 2; break;
                     case 3: z = 3; break;
                   }
                   write(x); write(y); write(z);";
        let (p, t) = lst_of(src);
        // Lines: 1 switch, 2 x=1, 3 break, 4 y=2, 5 break, 6 z=3, 7 break,
        // 8 write(x), 9 write(y), 10 write(z).
        assert_eq!(ils(&p, &t, 3), Some(4), "break falls into next arm");
        assert_eq!(ils(&p, &t, 5), Some(6));
        assert_eq!(ils(&p, &t, 7), Some(8), "last arm exits the switch");
        assert_eq!(ils(&p, &t, 1), Some(8));
    }

    #[test]
    fn successor_iteration_and_queries() {
        let (p, t) = lst_of("while (c) { if (a) { x = 1; } y = 2; } write(y);");
        // Lines: 1 while, 2 if, 3 x=1, 4 y=2, 5 write.
        let x = p.at_line(3);
        let chain: Vec<usize> = t.successors(x).map(|s| p.line_of(s)).collect();
        assert_eq!(chain, vec![4, 1, 5]);
        assert!(t.is_successor(p.at_line(1), x));
        assert!(
            !t.is_successor(p.at_line(2), x),
            "the if is not a successor"
        );
        assert_eq!(
            t.nearest_where(x, |s| p.line_of(s) == 1),
            Some(p.at_line(1))
        );
        assert_eq!(t.nearest_where(x, |_| false), None);
    }

    #[test]
    fn preorder_is_parents_first_and_complete() {
        let (p, t) = lst_of("a = 1; while (c) { b = 2; } d = 3;");
        let order = t.preorder();
        assert_eq!(order.len(), p.len());
        let pos = |s: StmtId| order.iter().position(|&x| x == s).unwrap();
        for s in p.stmt_ids() {
            if let Some(par) = t.immediate(s) {
                assert!(pos(par) < pos(s), "parent before child");
            }
        }
    }

    #[test]
    fn empty_switch_arm_skipped_in_fallthrough() {
        let src = "switch (c) { case 1: x = 1; case 2: case 3: y = 2; } write(y);";
        let (p, t) = lst_of(src);
        // case 2 / case 3 guard one arm {y=2}; x=1 falls through into it.
        assert_eq!(ils(&p, &t, 2), Some(3));
    }

    #[test]
    fn do_while_body_end_returns_to_predicate() {
        let (p, t) = lst_of("do { x = 1; y = 2; } while (c); write(y);");
        // Lines: 1 do-while, 2 x, 3 y, 4 write.
        assert_eq!(ils(&p, &t, 3), Some(1));
        assert_eq!(ils(&p, &t, 1), Some(4));
    }
}
