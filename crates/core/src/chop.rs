//! Forward slices and chops — standard PDG derivatives (§1 lists the
//! application areas they serve: impact analysis, integration, testing).
//!
//! A *forward slice* of `s` is everything `s` can affect; a *chop* between
//! `source` and `sink` is the part of the backward slice of `sink` that the
//! forward slice of `source` can reach — "how does this input influence
//! that output".
//!
//! Jump handling: forward slices answer "what is affected", and jumps
//! affect nothing data- or control-wise, so no jump repair is needed on the
//! forward side. Chops inherit the jump repair of the backward half when
//! requested through [`chop_executable`].

use crate::{agrawal_slice, Analysis, Criterion, Slice};
use jumpslice_dataflow::StmtSet;
use jumpslice_lang::StmtId;

/// The forward closure of data and control dependence from `s`: every
/// statement whose execution or values `s` may influence.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{forward_slice, Analysis};
/// use jumpslice_lang::parse;
/// let p = parse("read(x); y = x + 1; z = 5; write(y); write(z);")?;
/// let a = Analysis::new(&p);
/// let f = forward_slice(&a, p.at_line(1));
/// assert_eq!(f.lines(&p), vec![1, 2, 4]); // z is untouched by x
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn forward_slice(a: &Analysis<'_>, s: StmtId) -> Slice {
    Slice::from_stmts(a.forward_closure([s]))
}

/// The chop from `source` to `sink`: statements lying on some dependence
/// path from `source` to `sink` (computed as forward(source) ∩
/// backward(sink), both on the unmodified PDG).
///
/// # Examples
///
/// ```
/// use jumpslice_core::{chop, Analysis};
/// use jumpslice_lang::parse;
/// let p = parse("read(a); read(b); x = a + 1; y = x + b; write(y);")?;
/// let a_ = Analysis::new(&p);
/// let c = chop(&a_, p.at_line(1), p.at_line(5));
/// // read(b) feeds the sink but not from the source.
/// assert_eq!(c.lines(&p), vec![1, 3, 4, 5]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn chop(a: &Analysis<'_>, source: StmtId, sink: StmtId) -> Slice {
    let fwd = a.forward_closure([source]);
    let bwd = a.backward_closure([sink]);
    Slice::from_stmts(fwd.intersection(&bwd))
}

/// An *executable* chop: the jump-repaired backward slice of `sink`
/// (Figure 7), filtered to statements influenced by `source` but keeping
/// every jump and predicate the repair added, so the result still replays
/// correctly with respect to the sink.
///
/// This is the chop a debugger wants: "show me how `source` reaches
/// `sink`, as a program I can actually run".
pub fn chop_executable(a: &Analysis<'_>, source: StmtId, sink: StmtId) -> Slice {
    let backward = agrawal_slice(a, &Criterion::at_stmt(sink));
    let fwd = a.forward_closure([source]);
    let stmts: StmtSet = backward
        .stmts
        .iter()
        .filter(|&s| fwd.contains(s) || a.is_jump(s) || a.prog().stmt(s).kind.is_predicate())
        .collect();
    Slice {
        stmts,
        moved_labels: backward.moved_labels,
        traversals: backward.traversals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use jumpslice_lang::parse;

    #[test]
    fn forward_slice_through_control() {
        let p = parse("read(c); if (c) { x = 1; } write(x); write(9);").unwrap();
        let a = Analysis::new(&p);
        let f = forward_slice(&a, p.at_line(1));
        // read(c) affects the if, hence x = 1, hence write(x) — but not
        // the constant write.
        assert_eq!(f.lines(&p), vec![1, 2, 3, 4]);
    }

    #[test]
    fn chop_is_contained_in_both_slices() {
        let p = corpus::fig1();
        let a = Analysis::new(&p);
        let src = p.at_line(4); // read(x)
        let sink = p.at_line(12); // write(positives)
        let c = chop(&a, src, sink);
        let fwd = forward_slice(&a, src);
        let bwd = Slice::from_stmts(a.pdg().backward_closure([sink]));
        assert!(c.subset_of(&fwd));
        assert!(c.subset_of(&bwd));
        assert!(c.contains(src));
        assert!(c.contains(sink));
    }

    #[test]
    fn unrelated_chop_is_empty() {
        let p = parse("read(a); read(b); write(a); write(b);").unwrap();
        let a_ = Analysis::new(&p);
        let c = chop(&a_, p.at_line(2), p.at_line(3));
        assert!(c.is_empty(), "{:?}", c.lines(&p));
    }

    #[test]
    fn chop_on_fig1_finds_the_positives_path() {
        let p = corpus::fig1();
        let a = Analysis::new(&p);
        // From read(x) to write(positives): via the predicates and the
        // increment, not via any sum assignment.
        let c = chop(&a, p.at_line(4), p.at_line(12));
        let lines = c.lines(&p);
        assert!(lines.contains(&7), "the increment is on the path");
        assert!(!lines.contains(&6) && !lines.contains(&9) && !lines.contains(&10));
    }

    #[test]
    fn executable_chop_keeps_repaired_jumps() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let c = chop_executable(&a, p.at_line(4), p.at_line(15));
        // The jump repair (gotos 7 and 13) survives the chop filter.
        assert!(c.lines(&p).contains(&7));
        assert!(c.lines(&p).contains(&13));
        assert!(!c.lines(&p).contains(&1), "sum = 0 is not on the path");
    }
}
