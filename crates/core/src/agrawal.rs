//! The paper's general algorithm (Figure 7).

use crate::provenance::Recorder;
use crate::{reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_lang::StmtId;
use jumpslice_obs as obs;

/// Agrawal's Figure 7: the slicing algorithm for programs with arbitrary
/// jump statements.
///
/// Starting from the conventional slice (which, via the fused
/// conditional-goto adaptation, already handles conditional jumps), it
/// repeatedly traverses the postdominator tree in preorder; an
/// *unconditional* jump statement `J` not yet in the slice is added —
/// together with the transitive closure of its dependences — when its
/// *nearest postdominator in the slice* differs from its *nearest lexical
/// successor in the slice* (or when the [`Analysis::dowhile_hazard`]
/// extension guard fires). When a full traversal adds nothing, it
/// re-associates the labels of in-slice `goto`s whose targets fell outside
/// the slice.
///
/// `Slice::traversals` reports the number of productive traversals; the
/// paper's Figure 10 program is the canonical example needing two.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion, agrawal_slice};
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
/// // Figure 3-c: the gotos on lines 7 and 13 join; the one on line 11 does not.
/// assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 13, 15]);
/// ```
pub fn agrawal_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let order = a.jumps_in_pdom_preorder();
    agrawal_slice_with_order(a, crit, &order)
}

/// Figure 7 driven by an explicit jump visit order.
///
/// The paper notes the preorder of the lexical successor tree works equally
/// well (possibly with a different traversal count but the same final
/// slice); pass [`Analysis::jumps_in_lst_preorder`] to use it. The ablation
/// bench compares the two drivers. On the paper's figures the drivers agree
/// exactly; on adversarial goto programs both remain sound supersets of the
/// Ball–Horwitz slice but can differ (see `tests/extension_gaps.rs`).
pub fn agrawal_slice_with_order(
    a: &Analysis<'_>,
    crit: &Criterion,
    jump_order: &[StmtId],
) -> Slice {
    figure7(a, crit, jump_order, None)
}

/// The dense round-based Figure-7 loop, kept verbatim as the differential
/// baseline for the sparse kernel (`sparse::figure7_sparse`), which must be
/// bit-identical to it. Driven by the pdom preorder, like
/// [`agrawal_slice`].
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion};
/// use jumpslice_core::{agrawal_slice, agrawal_slice_reference};
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let crit = Criterion::at_stmt(p.at_line(15));
/// assert_eq!(agrawal_slice(&a, &crit), agrawal_slice_reference(&a, &crit));
/// ```
pub fn agrawal_slice_reference(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let order = a.jumps_in_pdom_preorder();
    figure7_reference(a, crit, &order, None)
}

/// The single Figure-7 entry point behind both the plain slicers and the
/// traced [`crate::agrawal_slice_traced`]: one code path, so a provenance
/// record can never diverge from the slice it explains. `rec`, when present,
/// is told why each statement entered the slice.
///
/// Dispatches to the sparse change-driven kernel whenever the chain index
/// can honor `jump_order` (always, for the orders this crate produces);
/// falls back to the dense [`figure7_reference`] loop otherwise. The two
/// are bit-identical — slices, traversal counts, emitted events, recorded
/// provenance — which the differential harness's `sparse` mode enforces.
pub(crate) fn figure7(
    a: &Analysis<'_>,
    crit: &Criterion,
    jump_order: &[StmtId],
    rec: Option<&mut Recorder>,
) -> Slice {
    if crate::sparse::covers(a, jump_order) {
        crate::sparse::figure7_sparse(a, crit, jump_order, rec)
    } else {
        figure7_reference(a, crit, jump_order, rec)
    }
}

/// The dense loop itself: re-tests every out-of-slice jump each round.
pub(crate) fn figure7_reference(
    a: &Analysis<'_>,
    crit: &Criterion,
    jump_order: &[StmtId],
    mut rec: Option<&mut Recorder>,
) -> Slice {
    let mut stmts = {
        let _t = obs::phase(obs::Phase::ConventionalClosure);
        match rec.as_deref_mut() {
            Some(r) => r.seed_closure(a, crit),
            None => a.backward_closure(crit.seeds(a)),
        }
    };
    let mut work = Vec::new();
    let mut traversals = 0usize;
    let mut round: u32 = 0;
    loop {
        round += 1;
        // Cooperative deadline probe: one full traversal is the dense
        // loop's natural unit of interruptible work.
        crate::cancel::checkpoint();
        let mut admitted: u32 = 0;
        {
            let _t = obs::phase_round(obs::Phase::FixpointRound, round);
            for &j in jump_order {
                if stmts.contains(j) {
                    continue;
                }
                let npd = a.nearest_pdom_in(j, &stmts);
                let nls = a.nearest_lexsucc_in(j, &stmts);
                // `dowhile_hazard` extends the paper's test to the do-while
                // construct this workspace adds; it never fires on the
                // paper's own language (see Analysis::dowhile_hazard).
                let disagree = npd != nls;
                if disagree || a.dowhile_hazard(j, &stmts) {
                    obs::record(|| obs::Event::JumpAdmitted {
                        algo: "fig7",
                        line: a.prog().line_of(j) as u32,
                        round,
                        reason: if disagree {
                            obs::AdmitReason::PdomLexsuccDisagree {
                                npd_line: npd.map(|s| a.prog().line_of(s) as u32),
                                nls_line: nls.map(|s| a.prog().line_of(s) as u32),
                            }
                        } else {
                            obs::AdmitReason::DoWhileHazard
                        },
                    });
                    // Add J and the transitive closure of its dependences.
                    // The in-place closure treats statements already in the
                    // slice as visited: sound, because the slice is closed
                    // under dependence at every point of the traversal —
                    // the same invariant that lets the condensed engine
                    // answer this as a bitset union.
                    match rec.as_deref_mut() {
                        Some(r) => r.jump_closure(a, j, round, npd, nls, !disagree, &mut stmts),
                        None => a.backward_closure_into_closed([j], &mut stmts, &mut work),
                    }
                    admitted += 1;
                }
            }
        }
        obs::record(|| obs::Event::Round {
            algo: "fig7",
            round,
            admitted,
        });
        if admitted == 0 {
            break;
        }
        traversals += 1;
    }
    let moved_labels = {
        let _t = obs::phase(obs::Phase::LabelReassoc);
        reassociate_labels(a, &stmts)
    };
    Slice {
        stmts,
        moved_labels,
        traversals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conventional_slice, corpus};

    #[test]
    fn figure_3_slice_and_labels() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 13, 15]);
        assert_eq!(s.traversals, 1, "paper: a single traversal suffices");
        // goto L14's target (line 14) is not in the slice: L14 moves to its
        // nearest postdominator in the slice, write(positives) on line 15.
        let l14 = p.label("L14").unwrap();
        assert_eq!(s.moved_labels, vec![(l14, Some(p.at_line(15)))]);
    }

    #[test]
    fn figure_5_slice() {
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(14)));
        // Figure 5-c: includes continue on 7, omits continue on 11.
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 14]);
        assert_eq!(s.traversals, 1);
        assert!(
            s.moved_labels.is_empty(),
            "structured jumps carry no labels"
        );
    }

    #[test]
    fn figure_8_slice_pulls_predicate_9() {
        let p = corpus::fig8();
        let a = Analysis::new(&p);
        let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
        // Figure 8-c: jumps 7, 11, 13 and predicate 9 join the slice.
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 9, 11, 13, 15]);
        assert_eq!(s.traversals, 1);
    }

    #[test]
    fn figure_10_needs_two_traversals() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(9)));
        // Figure 10-b.
        assert_eq!(s.lines(&p), vec![1, 2, 3, 4, 7, 9]);
        assert_eq!(s.traversals, 2, "node 4 only joins in the second pass");
        // Both goto targets (6 and 8) fell out: L6 re-targets the goto on
        // line 7, L8 re-targets write(y) on line 9.
        let mut moved = s.moved_labels.clone();
        moved.sort_by_key(|&(l, _)| p.label_str(l).to_owned());
        assert_eq!(
            moved,
            vec![
                (p.label("L6").unwrap(), Some(p.at_line(7))),
                (p.label("L8").unwrap(), Some(p.at_line(9))),
            ]
        );
    }

    #[test]
    fn figure_16_correct_slice() {
        let p = corpus::fig16();
        let a = Analysis::new(&p);
        let s = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(10)));
        // Figure 16-c: the goto on line 4 is included; L6 re-associates.
        assert_eq!(s.lines(&p), vec![1, 2, 3, 4, 5, 10]);
        let l6 = p.label("L6").unwrap();
        assert_eq!(s.moved_labels, vec![(l6, Some(p.at_line(10)))]);
    }

    #[test]
    fn lst_driven_traversal_gives_same_slice() {
        for p in [
            corpus::fig3(),
            corpus::fig5(),
            corpus::fig8(),
            corpus::fig10(),
            corpus::fig16(),
        ] {
            let a = Analysis::new(&p);
            let last = p.lexical_order().len();
            let crit = Criterion::at_stmt(p.at_line(last));
            let by_pdom = agrawal_slice(&a, &crit);
            let by_lst = agrawal_slice_with_order(&a, &crit, &a.jumps_in_lst_preorder());
            assert_eq!(by_pdom.stmts, by_lst.stmts);
        }
    }

    #[test]
    fn slice_on_jump_free_program_equals_conventional() {
        let p = corpus::fig1();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(12));
        let conv = conventional_slice(&a, &crit);
        let full = agrawal_slice(&a, &crit);
        assert_eq!(conv.stmts, full.stmts);
        assert_eq!(full.traversals, 0);
    }
}
