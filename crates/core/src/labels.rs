//! Label re-association (the final step of Figures 7, 12, and 13).

use crate::{Analysis, SlicePoint};
use jumpslice_dataflow::StmtSet;
use jumpslice_lang::{Label, StmtKind};

/// For each `goto L` (plain or fused conditional) in the slice whose target
/// statement is *not* in the slice, associates `L` with the target's nearest
/// postdominator in the slice (`None` = exit).
///
/// Quoting Figure 7: *"For each goto statement, Goto L, in Slice, if the
/// statement labeled L is not in Slice then associate the label L with its
/// nearest postdominator in Slice."*
pub fn reassociate_labels(a: &Analysis<'_>, slice: &StmtSet) -> Vec<(Label, SlicePoint)> {
    let mut moved: Vec<(Label, SlicePoint)> = Vec::new();
    for s in slice.iter() {
        let label = match a.prog().stmt(s).kind {
            StmtKind::Goto { target } | StmtKind::CondGoto { target, .. } => target,
            _ => continue,
        };
        if moved.iter().any(|&(l, _)| l == label) {
            continue;
        }
        let target_stmt = a
            .prog()
            .label_target(label)
            .expect("validated programs have resolved labels");
        if slice.contains(target_stmt) {
            continue;
        }
        let dest = a.nearest_pdom_in(target_stmt, slice);
        moved.push((label, dest));
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;
    use jumpslice_dataflow::StmtSet;
    use jumpslice_lang::parse;

    #[test]
    fn dangling_label_moves_to_nearest_postdominator() {
        let p = parse("x = 1; goto L; y = 2; L: z = 3; write(x);").unwrap();
        let a = Analysis::new(&p);
        // Slice keeps the goto but not the labeled statement.
        let slice: StmtSet = [p.at_line(1), p.at_line(2), p.at_line(5)]
            .into_iter()
            .collect();
        let moved = reassociate_labels(&a, &slice);
        let l = p.label("L").unwrap();
        assert_eq!(moved, vec![(l, Some(p.at_line(5)))]);
    }

    #[test]
    fn label_in_slice_does_not_move() {
        let p = parse("goto L; L: write(x);").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(1), p.at_line(2)].into_iter().collect();
        assert!(reassociate_labels(&a, &slice).is_empty());
    }

    #[test]
    fn label_moves_to_exit_when_nothing_follows() {
        let p = parse("goto L; L: x = 1;").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(1)].into_iter().collect();
        let moved = reassociate_labels(&a, &slice);
        assert_eq!(moved, vec![(p.label("L").unwrap(), None)]);
    }

    #[test]
    fn two_gotos_one_label_deduplicated() {
        let p = parse("goto L; goto L; L: x = 1; write(y);").unwrap();
        let a = Analysis::new(&p);
        let slice: StmtSet = [p.at_line(1), p.at_line(2), p.at_line(4)]
            .into_iter()
            .collect();
        let moved = reassociate_labels(&a, &slice);
        assert_eq!(moved.len(), 1);
    }
}
