//! The conservative on-the-fly approximation (paper, §4, Figure 13).

use crate::{conventional_slice, reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_obs as obs;

/// The paper's Figure 13: include *every* jump statement directly control
/// dependent on a predicate in the conventional slice.
///
/// Needs no postdominator-tree traversal and no lexical successor tree at
/// all, so the test can run on the fly while the conventional closure is
/// computed — "extremely efficient and should suffice for use with most
/// programs written in modern procedural languages" (§1). The price is
/// precision: on Figure 14 it keeps the `break`s on lines 5 and 7 that
/// Figure 12 proves removable. For structured programs the result is always
/// a correct (super-)slice; for unstructured programs it can miss jumps —
/// Figure 8's `goto`s on lines 11 and 13 are control dependent on a
/// predicate *outside* the conventional slice (see
/// [`crate::baselines::jzr_slice`], which is this rule applied beyond its
/// domain).
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion, conservative_slice};
/// let p = corpus::fig14();
/// let a = Analysis::new(&p);
/// let s = conservative_slice(&a, &Criterion::at_stmt(p.at_line(9)));
/// assert_eq!(s.lines(&p), vec![1, 3, 4, 5, 7, 9]); // Figure 14-c
/// ```
pub fn conservative_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let mut stmts = conventional_slice(a, crit).stmts;
    // Only live *unconditional* jumps are candidates (conditional jumps are
    // covered by the conventional algorithm's adaptation). A single pass
    // suffices: the added jumps are not predicates, so they can never
    // enable one another.
    let jumps: Vec<_> = a
        .prog()
        .stmt_ids()
        .filter(|&s| a.prog().stmt(s).kind.is_unconditional_jump() && a.is_live(s))
        .collect();
    for j in jumps {
        if stmts.contains(j) {
            continue;
        }
        // The second disjunct is the do-while extension guard shared with
        // Figures 7/12 (see Analysis::dowhile_hazard); it never fires on
        // the paper's own constructs — and costs nothing on programs
        // without do-while, so this algorithm forces neither the pdom tree
        // nor the LST on the paper's language (label re-association aside).
        let on_predicate = a
            .pdg()
            .control()
            .deps(j)
            .iter()
            .find(|&&p| stmts.contains(p))
            .copied();
        if on_predicate.is_some() || a.dowhile_hazard(j, &stmts) {
            obs::record(|| obs::Event::JumpAdmitted {
                algo: "fig13",
                line: a.prog().line_of(j) as u32,
                round: 1,
                reason: match on_predicate {
                    Some(p) => obs::AdmitReason::OnIncludedPredicate {
                        predicate_line: a.prog().line_of(p) as u32,
                    },
                    None => obs::AdmitReason::DoWhileHazard,
                },
            });
            stmts.insert(j);
        }
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{corpus, structured_slice};

    #[test]
    fn figure_5_same_as_structured() {
        // Paper: "For the example shown in Figure 5-a, this algorithm will
        // give the same slice as that given by the algorithm in Figure 12."
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(14));
        assert_eq!(
            conservative_slice(&a, &crit).stmts,
            structured_slice(&a, &crit).stmts
        );
    }

    #[test]
    fn figure_14_is_strictly_bigger() {
        let p = corpus::fig14();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(9));
        let precise = structured_slice(&a, &crit);
        let cons = conservative_slice(&a, &crit);
        assert!(precise.subset_of(&cons));
        assert_eq!(cons.lines(&p), vec![1, 3, 4, 5, 7, 9]);
        assert_eq!(precise.lines(&p), vec![1, 3, 4, 9]);
    }

    #[test]
    fn superset_of_structured_on_structured_corpus() {
        for p in [
            corpus::fig1(),
            corpus::fig5(),
            corpus::fig14(),
            corpus::fig16(),
        ] {
            let a = Analysis::new(&p);
            for line in 1..=p.lexical_order().len() {
                let crit = Criterion::at_stmt(p.at_line(line));
                let precise = structured_slice(&a, &crit);
                let cons = conservative_slice(&a, &crit);
                assert!(
                    precise.subset_of(&cons),
                    "line {line}: Figure 12 slice must be within Figure 13's"
                );
            }
        }
    }
}
