//! Structured programs: the classifier and the simplified algorithm
//! (paper, §4, Figure 12).

use crate::{conventional_slice, reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_obs as obs;

/// Whether every jump in the program is a *structured* jump: one whose
/// target statement is also one of its lexical successors (paper, §4).
///
/// `break`, `continue`, and `return` always qualify; a `goto` qualifies only
/// when it jumps forward to a statement on its own lexical-successor chain.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{is_structured, Analysis};
/// use jumpslice_lang::parse;
/// let structured = parse("while (c) { if (a) break; x = 1; }")?;
/// assert!(is_structured(&Analysis::new(&structured)));
/// let unstructured = parse("L: x = 1; if (c) goto L;")?;
/// assert!(!is_structured(&Analysis::new(&unstructured)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn is_structured(a: &Analysis<'_>) -> bool {
    a.prog().stmt_ids().filter(|&s| a.is_jump(s)).all(|j| {
        match a.jump_target(j) {
            // `return` (and a `break` out of the last construct) target the
            // exit, the root of the lexical successor tree.
            None => true,
            Some(t) => a.lst().is_successor(t, j),
        }
    })
}

/// Whether the program contains a pair `(N1, N2)` of unconditional jump
/// statements with `N1` a postdominator of `N2` and `N2` a lexical
/// successor of `N1` — the situation that can force Figure 7 to run more
/// than one traversal (paper, §3: nodes 4 and 7 of Figure 10). Structured
/// programs never contain such a pair (Property 1, §4).
///
/// Interpretation note: the paper states Figures 3 and 8 contain "no such
/// pairs"; read over arbitrary nodes that is false (in Figure 3, node 3
/// postdominates node 13, which lexically succeeds it), so — matching the
/// paper's own example, where both nodes are plain `goto`s — the pair is
/// taken over unconditional jumps. Those are exactly the nodes whose late
/// *addition* during a traversal can invalidate an earlier jump's
/// nearest-lexical-successor test.
pub fn has_pdom_lexsucc_pair(a: &Analysis<'_>) -> bool {
    let pdom = a.pdom();
    let is_ujump = |s| a.prog().stmt(s).kind.is_unconditional_jump();
    for n1 in a.prog().stmt_ids().filter(|&s| is_ujump(s)) {
        let node1 = a.cfg().node(n1);
        if !pdom.is_reachable(node1) {
            continue;
        }
        // Walk N1's lexical-successor chain: each element N2 lexically
        // succeeds N1; check whether N1 postdominates it.
        for n2 in a.lst().successors(n1).filter(|&s| is_ujump(s)) {
            let node2 = a.cfg().node(n2);
            if pdom.is_reachable(node2) && pdom.strictly_dominates(node1, node2) {
                return true;
            }
        }
    }
    false
}

/// The paper's Figure 12: slicing for programs whose jumps are all
/// structured.
///
/// A *single* preorder traversal of the postdominator tree suffices, and a
/// jump is added exactly when (i) it is directly control dependent on a
/// predicate already in the slice and (ii) its nearest postdominator in the
/// slice differs from its nearest lexical successor in the slice. No
/// dependence closure is needed when adding (Property 2, §4: the
/// dependences are already in the slice).
///
/// For programs that are **not** structured (see [`is_structured`]) this
/// simplification is not guaranteed to produce a correct slice; use
/// [`crate::agrawal_slice`] there.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion, structured_slice};
/// let p = corpus::fig14();
/// let a = Analysis::new(&p);
/// let s = structured_slice(&a, &Criterion::at_stmt(p.at_line(9)));
/// assert_eq!(s.lines(&p), vec![1, 3, 4, 9]); // Figure 14-b
/// ```
pub fn structured_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let mut stmts = conventional_slice(a, crit).stmts;
    let mut added_any = false;
    for j in a.jumps_in_pdom_preorder() {
        if stmts.contains(j) {
            continue;
        }
        // The do-while hazard guard bypasses both of the paper's
        // conditions: a `break` ending every body path leaves the loop
        // condition dead, so the jump has no controlling predicate at all,
        // yet deleting it resurrects the loop (extension; see
        // Analysis::dowhile_hazard).
        if a.dowhile_hazard(j, &stmts) {
            obs::record(|| obs::Event::JumpAdmitted {
                algo: "fig12",
                line: a.prog().line_of(j) as u32,
                round: 1,
                reason: obs::AdmitReason::DoWhileHazard,
            });
            stmts.insert(j);
            added_any = true;
            continue;
        }
        let on_included_predicate = a.pdg().control().deps(j).iter().any(|&p| stmts.contains(p));
        if !on_included_predicate {
            continue;
        }
        let npd = a.nearest_pdom_in(j, &stmts);
        let nls = a.nearest_lexsucc_in(j, &stmts);
        if npd != nls {
            obs::record(|| obs::Event::JumpAdmitted {
                algo: "fig12",
                line: a.prog().line_of(j) as u32,
                round: 1,
                reason: obs::AdmitReason::PdomLexsuccDisagree {
                    npd_line: npd.map(|s| a.prog().line_of(s) as u32),
                    nls_line: nls.map(|s| a.prog().line_of(s) as u32),
                },
            });
            stmts.insert(j);
            added_any = true;
        }
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: usize::from(added_any),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, corpus};

    #[test]
    fn paper_programs_classified() {
        // Figures 5 and 14 are structured; 3, 8, 10, 16 are not.
        assert!(is_structured(&Analysis::new(&corpus::fig1())));
        assert!(is_structured(&Analysis::new(&corpus::fig5())));
        assert!(is_structured(&Analysis::new(&corpus::fig14())));
        assert!(!is_structured(&Analysis::new(&corpus::fig3())));
        assert!(!is_structured(&Analysis::new(&corpus::fig8())));
        assert!(!is_structured(&Analysis::new(&corpus::fig10())));
        // Figure 16's gotos are forward jumps to lexical successors — it is
        // structured by the paper's definition even though it uses goto.
        assert!(is_structured(&Analysis::new(&corpus::fig16())));
    }

    #[test]
    fn property_1_pairs() {
        // Structured programs have no (pdom, lexsucc) pair (§4, property 1).
        assert!(!has_pdom_lexsucc_pair(&Analysis::new(&corpus::fig5())));
        assert!(!has_pdom_lexsucc_pair(&Analysis::new(&corpus::fig14())));
        // Figure 10 contains the pair (4, 7): 4 postdominates 7, 7 lexically
        // succeeds 4 — the reason two traversals are needed.
        assert!(has_pdom_lexsucc_pair(&Analysis::new(&corpus::fig10())));
        // Figures 3 and 8 contain no such pair (paper: single traversal).
        assert!(!has_pdom_lexsucc_pair(&Analysis::new(&corpus::fig3())));
        assert!(!has_pdom_lexsucc_pair(&Analysis::new(&corpus::fig8())));
    }

    #[test]
    fn figure_5_structured_equals_general() {
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(14));
        let simple = structured_slice(&a, &crit);
        let general = agrawal_slice(&a, &crit);
        assert_eq!(simple.stmts, general.stmts);
        assert_eq!(simple.lines(&p), vec![2, 3, 4, 5, 7, 8, 14]);
    }

    #[test]
    fn figure_14_structured_slice() {
        let p = corpus::fig14();
        let a = Analysis::new(&p);
        let s = structured_slice(&a, &Criterion::at_stmt(p.at_line(9)));
        // Figure 14-b: break on 3 kept, breaks on 5 and 7 omitted.
        assert_eq!(s.lines(&p), vec![1, 3, 4, 9]);
    }

    #[test]
    fn structured_equals_general_on_figure_16() {
        // Fig. 16 is structured (forward gotos), so Figure 12 must agree
        // with Figure 7 on it.
        let p = corpus::fig16();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(10));
        assert_eq!(
            structured_slice(&a, &crit).stmts,
            agrawal_slice(&a, &crit).stmts
        );
    }
}
