//! Little-endian wire primitives shared by the snapshot codec
//! ([`crate::snapshot`]) and the chain-index codec in [`crate::sparse`].
//!
//! Encoding appends to a plain `Vec<u8>`; decoding goes through [`Reader`],
//! a cursor that answers `None` on any out-of-bounds read so decoders can
//! propagate truncation with `?` instead of panicking. Integers are
//! little-endian; counts and indices travel as `u32` (`u32::MAX` doubles as
//! the `None` sentinel for optional ids, matching the in-memory sparse
//! kernel's convention).

use jumpslice_dataflow::BitSet;

/// Appends a single tag byte.
pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends `v` little-endian.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` little-endian.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` count or index, panicking (encode-side only — encoders
/// serialize trusted in-memory data) if it does not fit the `u32` wire size.
pub(crate) fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u32(out, u32::try_from(v).expect("wire count fits u32"));
}

/// Appends a length-prefixed byte string.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_len(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// A bounds-checked decode cursor. Every accessor consumes from the front
/// and returns `None` once the buffer runs dry; decoders never index the
/// underlying slice directly.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, tail) = self.buf.split_at_checked(n)?;
        self.buf = tail;
        Some(head)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = self.bytes(1)?;
        Some(b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let b: [u8; 4] = self.bytes(4)?.try_into().ok()?;
        Some(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let b: [u8; 8] = self.bytes(8)?.try_into().ok()?;
        Some(u64::from_le_bytes(b))
    }

    /// A `u32` count, rejected when it exceeds `max` — the caller's bound on
    /// how many elements can legitimately follow. Keeps a corrupt length
    /// field from turning into a giant pre-allocation or a long bogus loop.
    pub(crate) fn len(&mut self, max: usize) -> Option<usize> {
        let v = self.u32()? as usize;
        (v <= max).then_some(v)
    }

    /// A length-prefixed byte string (the count is implicitly bounded by the
    /// bytes actually present).
    pub(crate) fn byte_str(&mut self) -> Option<&'a [u8]> {
        let n = self.len(self.remaining())?;
        self.bytes(n)
    }

    /// A [`BitSet`] via [`BitSet::decode_from`], advancing past it.
    pub(crate) fn bitset(&mut self) -> Option<BitSet> {
        let (set, used) = BitSet::decode_from(self.buf)?;
        self.buf = &self.buf[used..];
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 7);
        put_len(&mut out, 3);
        put_bytes(&mut out, b"abc");
        let mut set = BitSet::new(130);
        set.insert(0);
        set.insert(129);
        set.encode_into(&mut out);

        let mut r = Reader::new(&out);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 7));
        assert_eq!(r.len(10), Some(3));
        assert_eq!(r.byte_str(), Some(&b"abc"[..]));
        assert_eq!(r.bitset(), Some(set));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u32(), None, "exhausted reader answers None");
    }

    #[test]
    fn reader_rejects_oversized_counts_and_truncation() {
        let mut out = Vec::new();
        put_u32(&mut out, 1000);
        let mut r = Reader::new(&out);
        assert_eq!(r.len(999), None, "count above the caller's bound");

        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert_eq!(r.byte_str(), None, "truncated at {cut}");
        }
    }
}
