//! The paper's figure programs, verbatim (modulo concrete right-hand sides
//! for the paper's `...` placeholders).
//!
//! Statement numbering follows the paper exactly: the statement the paper
//! calls "line n" is `program.at_line(n)` (lexical preorder, 1-based).

use jumpslice_lang::{parse, Program};

/// Figure 1-a: the jump-free running example.
pub const FIG1_SRC: &str = "\
sum = 0;
positives = 0;
while (!eof()) {
  read(x);
  if (x <= 0)
    sum = sum + f1(x);
  else {
    positives = positives + 1;
    if (x % 2 == 0)
      sum = sum + f2(x);
    else
      sum = sum + f3(x);
  }
}
write(sum);
write(positives);
";

/// Figure 3-a: the `goto` version of Figure 1-a (indirect jumps via L13).
pub const FIG3_SRC: &str = "\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
";

/// Figure 5-a: the `continue` version of Figure 3-a.
pub const FIG5_SRC: &str = "\
sum = 0;
positives = 0;
while (!eof()) {
  read(x);
  if (x <= 0) {
    sum = sum + f1(x);
    continue;
  }
  positives = positives + 1;
  if (x % 2 == 0) {
    sum = sum + f2(x);
    continue;
  }
  sum = sum + f3(x);
}
write(sum);
write(positives);
";

/// Figure 8-a: Figure 3-a with the indirect jumps through L13 replaced by
/// direct jumps to L3.
pub const FIG8_SRC: &str = "\
sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L3;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L3;
L12: sum = sum + f3(x);
goto L3;
L14: write(sum);
write(positives);
";

/// Figure 10-a: the unstructured program (adapted from Ball–Horwitz) whose
/// slice needs two traversals of the postdominator tree.
pub const FIG10_SRC: &str = "\
if (c1) {
  goto L6;
  L3: y = 1;
  goto L8;
}
z = 2;
L6: x = 3;
goto L3;
L8: write(x);
write(y);
write(z);
";

/// Figure 14-a: the structured `switch` program separating Figures 12
/// and 13.
pub const FIG14_SRC: &str = "\
switch (c) {
  case 1:
    x = 1;
    break;
  case 2:
    y = 2;
    break;
  case 3:
    z = 3;
    break;
}
write(x);
write(y);
write(z);
";

/// Figure 16-a: the example on which Gallagher's algorithm produces an
/// incorrect slice.
pub const FIG16_SRC: &str = "\
read(x);
if (x < 0) {
  y = f1(x);
  goto L6;
}
y = f2(x);
L6: if (y < 0) {
  z = g1(y);
  goto L10;
}
z = g2(y);
L10: write(y);
write(z);
";

fn must(src: &str) -> Program {
    parse(src).expect("corpus programs are well-formed")
}

/// Figure 1-a as a parsed program.
pub fn fig1() -> Program {
    must(FIG1_SRC)
}

/// Figure 3-a as a parsed program.
pub fn fig3() -> Program {
    must(FIG3_SRC)
}

/// Figure 5-a as a parsed program.
pub fn fig5() -> Program {
    must(FIG5_SRC)
}

/// Figure 8-a as a parsed program.
pub fn fig8() -> Program {
    must(FIG8_SRC)
}

/// Figure 10-a as a parsed program.
pub fn fig10() -> Program {
    must(FIG10_SRC)
}

/// Figure 14-a as a parsed program.
pub fn fig14() -> Program {
    must(FIG14_SRC)
}

/// Figure 16-a as a parsed program.
pub fn fig16() -> Program {
    must(FIG16_SRC)
}

/// Every corpus program with its figure name and the paper's slicing
/// criterion line for it (the figure harness and corpus-wide tests iterate
/// this).
pub fn all() -> Vec<(&'static str, Program, usize)> {
    vec![
        ("fig1", fig1(), 12),
        ("fig3", fig3(), 15),
        ("fig5", fig5(), 14),
        ("fig8", fig8(), 15),
        ("fig10", fig10(), 9),
        ("fig14", fig14(), 9),
        ("fig16", fig16(), 10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_counts_match_paper_numbering() {
        assert_eq!(fig1().lexical_order().len(), 12);
        assert_eq!(fig3().lexical_order().len(), 15);
        assert_eq!(fig5().lexical_order().len(), 14);
        assert_eq!(fig8().lexical_order().len(), 15);
        assert_eq!(fig10().lexical_order().len(), 10);
        assert_eq!(fig14().lexical_order().len(), 10);
        assert_eq!(fig16().lexical_order().len(), 11);
    }

    #[test]
    fn criterion_lines_are_the_papers() {
        for (name, p, line) in all() {
            let s = p.at_line(line);
            assert!(
                matches!(p.stmt(s).kind, jumpslice_lang::StmtKind::Write { .. }),
                "{name}: criterion line {line} should be a write"
            );
        }
    }

    #[test]
    fn goto_programs_have_expected_labels() {
        let p = fig3();
        for l in ["L3", "L8", "L12", "L13", "L14"] {
            assert!(p.label(l).is_some(), "fig3 is missing label {l}");
        }
        assert_eq!(p.label_target(p.label("L13").unwrap()), Some(p.at_line(13)));
    }
}
