//! Lyle's extremely conservative algorithm (paper, §5; [22]).

use crate::{reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_graph::reachable_from;
use jumpslice_lang::StmtId;

/// Lyle's rule, as the paper characterizes it: once a statement `S` is in
/// the slice, include **every jump statement lying between `S` and the
/// criterion location in the flowgraph** — i.e. every jump reachable from
/// some slice statement from which the criterion is still reachable —
/// together with the closure of its dependences, iterated to a fixpoint.
///
/// Always sound, wildly imprecise: on Figure 5 it drags in the `continue`
/// on line 11 (and hence the predicate on line 9); on Figure 3 it keeps
/// every `goto` and every predicate.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion};
/// use jumpslice_core::baselines::lyle_slice;
/// let p = corpus::fig5();
/// let a = Analysis::new(&p);
/// let s = lyle_slice(&a, &Criterion::at_stmt(p.at_line(14)));
/// assert!(s.lines(&p).contains(&11), "Lyle keeps the second continue");
/// assert!(s.lines(&p).contains(&9), "and therefore the predicate on 9");
/// ```
pub fn lyle_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let mut stmts = crate::conventional_slice(a, crit).stmts;
    let g = a.cfg().graph();
    // Nodes from which the criterion location is reachable.
    let reaches_crit = reachable_from(&g.reversed(), a.cfg().node(crit.stmt));
    let jumps: Vec<StmtId> = a
        .prog()
        .stmt_ids()
        .filter(|&s| a.is_jump(s) && a.is_live(s))
        .collect();

    loop {
        // Nodes reachable from some current slice statement.
        let mut from_slice = vec![false; g.len()];
        for s in stmts.iter() {
            for n in reachable_from(g, a.cfg().node(s))
                .iter()
                .enumerate()
                .filter_map(|(i, &r)| r.then_some(i))
            {
                from_slice[n] = true;
            }
        }
        let mut added = false;
        for &j in &jumps {
            if stmts.contains(j) {
                continue;
            }
            let n = a.cfg().node(j);
            if from_slice[n.index()] && reaches_crit[n.index()] {
                a.pdg().backward_closure_into([j], &mut stmts);
                added = true;
            }
        }
        if !added {
            break;
        }
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, corpus};

    #[test]
    fn fig5_includes_both_continues() {
        // §5: "Unlike any of the algorithms presented in this paper, Lyle's
        // algorithm will also include the continue statement on line 11,
        // and therefore the predicate on line 9, in the slice."
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let s = lyle_slice(&a, &Criterion::at_stmt(p.at_line(14)));
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 9, 11, 14]);
    }

    #[test]
    fn fig3_includes_all_gotos_and_predicates() {
        // §5: "it will include all goto statements and all predicates in
        // the example in Figure 3, although some of them could be omitted."
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let s = lyle_slice(&a, &Criterion::at_stmt(p.at_line(15)));
        let lines = s.lines(&p);
        for jump_line in [3, 5, 7, 9, 11, 13] {
            assert!(lines.contains(&jump_line), "missing jump at {jump_line}");
        }
        // Strictly bigger than the precise slice.
        let precise = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(15)));
        assert!(precise.stmts.is_subset(&s.stmts));
        assert!(precise.stmts.len() < s.stmts.len());
    }

    #[test]
    fn superset_of_figure_7_on_corpus() {
        for (name, p, line) in corpus::all() {
            if name == "fig10" {
                continue; // see degenerate_case_figure_10
            }
            let a = Analysis::new(&p);
            let crit = Criterion::at_stmt(p.at_line(line));
            let precise = agrawal_slice(&a, &crit);
            let lyle = lyle_slice(&a, &crit);
            assert!(
                precise.stmts.is_subset(&lyle.stmts),
                "{name}: Lyle must over-approximate"
            );
        }
    }

    #[test]
    fn degenerate_case_figure_10() {
        // The paper hedges: Lyle includes the in-between jumps "except in
        // certain degenerate cases". Figure 10 is one: the gotos on lines 2
        // and 7 lie *before* every slice statement on every path, so the
        // between-S-and-loc rule never fires for them and the result is not
        // a superset of the correct slice.
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(9));
        let lyle = lyle_slice(&a, &crit);
        assert_eq!(lyle.lines(&p), vec![3, 4, 9]);
        let correct = agrawal_slice(&a, &crit);
        assert!(!correct.stmts.is_subset(&lyle.stmts));
    }
}
