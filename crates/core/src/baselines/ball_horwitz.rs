//! The Ball–Horwitz / Choi–Ferrante baseline (paper, §5; [5], [8]).

use crate::{reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_pdg::Pdg;

/// Slices by running the conventional closure over the **augmented** PDG:
/// control dependence computed from the flowgraph with an extra
/// (never-executed) edge from every unconditional jump to its fall-through,
/// data dependence from the unaugmented flowgraph.
///
/// In the augmented graph a jump is a pseudo-predicate, so the statements it
/// "guards" become control dependent on it and the plain backward closure
/// picks the right jumps up. The cost — and the paper's motivation for its
/// own algorithm — is that the flowgraph and PDG must be rebuilt in modified
/// form; here that rebuild happens privately per call.
///
/// The paper proves its Figure 7 algorithm computes exactly these slices;
/// `tests/equivalence.rs` and the proptest suite check that statement sets
/// agree on the whole corpus and on random programs.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion};
/// use jumpslice_core::baselines::ball_horwitz_slice;
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let s = ball_horwitz_slice(&a, &Criterion::at_stmt(p.at_line(15)));
/// assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 13, 15]);
/// ```
pub fn ball_horwitz_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let aug = Pdg::build_augmented(a.prog(), a.cfg());
    let mut stmts = aug.backward_closure(crit.seeds(a));
    // The augmentation adds a pseudo edge from *every* unconditional jump,
    // including unreachable ones (a dead `break` after a `break`), so the
    // closure can drag dead jumps in through spurious control dependences.
    // A statement that never executes contributes nothing to the
    // trajectory — and keeping it is actively wrong: excluding some other
    // jump may make it reachable in the residual program, where it would
    // then execute without a counterpart in the original run. The paper's
    // algorithms apply the same refinement via their live-jump orders.
    let dead: Vec<_> = stmts.iter().filter(|&s| !a.is_live(s)).collect();
    for s in dead {
        stmts.remove(s);
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, corpus};

    #[test]
    fn equivalent_to_figure_7_on_the_paper_corpus() {
        for (name, p, line) in corpus::all() {
            let a = Analysis::new(&p);
            let crit = Criterion::at_stmt(p.at_line(line));
            let bh = ball_horwitz_slice(&a, &crit);
            let ag = agrawal_slice(&a, &crit);
            assert_eq!(bh.stmts, ag.stmts, "{name}: Ball–Horwitz != Figure 7");
        }
    }

    /// Found by the difftest fuzzer (structured family, seed 1): the dead
    /// second `break` used to enter the slice through its augmentation
    /// pseudo edge, breaking the pinned `ball_horwitz ⊆ fig7` containment.
    #[test]
    fn dead_jumps_stay_out_of_the_augmented_closure() {
        use jumpslice_lang::parse;
        let p = parse(
            "read(v2);
             switch (v2) {
               case 0:
                 break;
                 break;
               case 1:
                 v2 = 0;
             }
             write(v2);",
        )
        .unwrap();
        // Statement lines: 1 read, 2 switch, 3 break, 4 dead break,
        // 5 assign, 6 write.
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(6));
        let bh = ball_horwitz_slice(&a, &crit);
        assert!(!bh.contains(p.at_line(4)), "{:?}", bh.lines(&p));
        let ag = agrawal_slice(&a, &crit);
        assert!(bh.stmts.is_subset(&ag.stmts));
    }

    #[test]
    fn equivalent_on_every_criterion_of_every_figure() {
        for (name, p, _) in corpus::all() {
            let a = Analysis::new(&p);
            for line in 1..=p.lexical_order().len() {
                let crit = Criterion::at_stmt(p.at_line(line));
                assert_eq!(
                    ball_horwitz_slice(&a, &crit).stmts,
                    agrawal_slice(&a, &crit).stmts,
                    "{name} line {line}"
                );
            }
        }
    }
}
