//! The related-work algorithms of §5, re-implemented from the paper's
//! descriptions as comparison baselines.
//!
//! * [`ball_horwitz_slice`] — Ball–Horwitz / Choi–Ferrante: the conventional
//!   closure over the *augmented* PDG. Provably equivalent to
//!   [`crate::agrawal_slice`]; the equivalence is exercised by the property
//!   tests.
//! * [`lyle_slice`] — Lyle's extremely conservative rule: keep every jump
//!   lying between a slice statement and the criterion in the flowgraph.
//! * [`gallagher_slice`] — Gallagher's rule: keep `goto L` when the block
//!   labeled `L` intersects the slice and the goto's controlling predicates
//!   are in the slice. Unsound on Figure 16.
//! * [`jzr_slice`] — the Jiang–Zhou–Robson rule set, reconstructed as
//!   "keep jumps directly control dependent on an included predicate"
//!   applied without the structuredness precondition. Unsound on Figure 8.

mod ball_horwitz;
mod gallagher;
mod jzr;
mod lyle;

pub use ball_horwitz::ball_horwitz_slice;
pub use gallagher::gallagher_slice;
pub use jzr::jzr_slice;
pub use lyle::lyle_slice;
