//! The Jiang–Zhou–Robson rule set (paper, §5; [18]).

use crate::{reassociate_labels, Analysis, Criterion, Slice};

/// The Jiang–Zhou–Robson rules, reconstructed from the paper's critique:
/// keep every jump that is directly control dependent on a predicate of the
/// conventional slice — i.e. the Figure 13 heuristic applied to *arbitrary*
/// programs, without the structuredness precondition that makes it sound.
///
/// On structured programs this coincides with
/// [`crate::conservative_slice`]; on unstructured programs it misses jumps
/// whose controlling predicate is not in the conventional slice — exactly
/// the paper's Figure 8 counterexample, where the `goto`s on lines 11 and
/// 13 are control dependent on the predicate on line 9, which the
/// conventional slice does not contain.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion};
/// use jumpslice_core::baselines::jzr_slice;
/// let p = corpus::fig8();
/// let a = Analysis::new(&p);
/// let s = jzr_slice(&a, &Criterion::at_stmt(p.at_line(15)));
/// assert!(!s.lines(&p).contains(&11) && !s.lines(&p).contains(&13));
/// ```
pub fn jzr_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let base = crate::conventional_slice(a, crit).stmts;
    let mut stmts = base.clone();
    // One-shot: every unconditional jump is judged against the
    // *conventional* slice only. This is the incompleteness the paper calls
    // out — on Figure 8 the gotos on lines 11 and 13 are control dependent
    // on the predicate on line 9, which the conventional slice never
    // contains, so they are silently dropped.
    for j in a
        .prog()
        .stmt_ids()
        .filter(|&s| a.prog().stmt(s).kind.is_unconditional_jump() && a.is_live(s))
    {
        if stmts.contains(j) {
            continue;
        }
        if a.pdg().control().deps(j).iter().any(|&p| base.contains(p)) {
            stmts.insert(j);
        }
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, conservative_slice, corpus};

    #[test]
    fn unsound_on_figure_8() {
        // §5: "they will fail to include both jump statements on lines 11
        // and 13 in the slice in Figure 8."
        let p = corpus::fig8();
        let a = Analysis::new(&p);
        let crit = Criterion::at_stmt(p.at_line(15));
        let s = jzr_slice(&a, &crit);
        // Line 7 is admitted (control dependent on the in-slice predicate
        // on line 5); lines 11 and 13 are not.
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 15]);
        let correct = agrawal_slice(&a, &crit);
        assert!(correct.lines(&p).contains(&11));
        assert!(correct.lines(&p).contains(&13));
    }

    #[test]
    fn coincides_with_conservative_on_structured_programs() {
        for p in [
            corpus::fig1(),
            corpus::fig5(),
            corpus::fig14(),
            corpus::fig16(),
        ] {
            let a = Analysis::new(&p);
            for line in 1..=p.lexical_order().len() {
                let crit = Criterion::at_stmt(p.at_line(line));
                assert_eq!(
                    jzr_slice(&a, &crit).stmts,
                    conservative_slice(&a, &crit).stmts
                );
            }
        }
    }
}
