//! Gallagher's algorithm (paper, §5; [11]).

use crate::{reassociate_labels, Analysis, Criterion, Slice};
use jumpslice_lang::StmtId;

/// Gallagher's rule: include a jump `Goto L` iff (a) **some statement of the
/// block labeled `L`** is in the slice, and (b) the predicates the jump is
/// directly control dependent on are in the slice. Following the paper,
/// `break`/`continue`/`return` are treated as gotos with dummy labels on
/// their implicit targets.
///
/// Correct on Figure 5 (it rightly drops the `continue` on line 11), but
/// **unsound on Figure 16**: the goto on line 4 is omitted because no
/// statement of the block labeled `L6` survives in the slice, leaving a
/// residual program where `y = f2(x)` always executes.
///
/// The "block labeled L" is read as the basic block starting at the label:
/// the maximal single-entry straight-line run of statements from the target.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, Analysis, Criterion};
/// use jumpslice_core::baselines::gallagher_slice;
/// let p = corpus::fig16();
/// let a = Analysis::new(&p);
/// let s = gallagher_slice(&a, &Criterion::at_stmt(p.at_line(10)));
/// assert!(!s.lines(&p).contains(&4), "misses the goto — Figure 16-b");
/// ```
pub fn gallagher_slice(a: &Analysis<'_>, crit: &Criterion) -> Slice {
    let mut stmts = crate::conventional_slice(a, crit).stmts;
    let jumps: Vec<StmtId> = a
        .prog()
        .stmt_ids()
        .filter(|&s| a.prog().stmt(s).kind.is_unconditional_jump() && a.is_live(s))
        .collect();
    loop {
        let mut added = false;
        for &j in &jumps {
            if stmts.contains(j) {
                continue;
            }
            let block = target_block(a, j);
            let block_hit = block.iter().any(|&t| stmts.contains(t));
            let preds_in = a.pdg().control().deps(j).iter().all(|&p| stmts.contains(p));
            // Top-level jumps have no controlling predicate; condition (b)
            // is vacuous there.
            if block_hit && preds_in {
                a.pdg().backward_closure_into([j], &mut stmts);
                added = true;
            }
        }
        if !added {
            break;
        }
    }
    let moved_labels = reassociate_labels(a, &stmts);
    Slice {
        stmts,
        moved_labels,
        traversals: 0,
    }
}

/// The basic block at the jump's target: statements along the maximal
/// straight-line (single successor / single predecessor) run from the
/// target node. `return` targets the exit — an empty block that can never
/// intersect a slice, so Gallagher drops returns unless their target block
/// is nonempty; we instead treat the exit as always included, matching the
/// dummy-label reading.
fn target_block(a: &Analysis<'_>, j: StmtId) -> Vec<StmtId> {
    let Some(target) = a.jump_target(j) else {
        return Vec::new();
    };
    let g = a.cfg().graph();
    let mut out = Vec::new();
    let mut node = a.cfg().node(target);
    // Stops at the exit node, which carries no statement.
    while let Some(s) = a.cfg().stmt(node) {
        out.push(s);
        let succs = g.succs(node);
        if succs.len() != 1 {
            break;
        }
        let next = succs[0];
        if g.preds(next).len() != 1 {
            break;
        }
        node = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agrawal_slice, corpus};

    #[test]
    fn correct_on_figure_5() {
        // §5: "this algorithm will correctly omit the continue statement on
        // line 11, and thus the predicate on line 9."
        let p = corpus::fig5();
        let a = Analysis::new(&p);
        let s = gallagher_slice(&a, &Criterion::at_stmt(p.at_line(14)));
        assert_eq!(s.lines(&p), vec![2, 3, 4, 5, 7, 8, 14]);
    }

    #[test]
    fn unsound_on_figure_16() {
        // §5 / Figure 16-b: the goto on line 4 is missed because no
        // statement in the block labeled L6 is in the slice.
        let p = corpus::fig16();
        let a = Analysis::new(&p);
        let s = gallagher_slice(&a, &Criterion::at_stmt(p.at_line(10)));
        assert_eq!(s.lines(&p), vec![1, 2, 3, 5, 10], "Figure 16-b");
        // The correct slice (Figure 16-c) keeps the goto.
        let correct = agrawal_slice(&a, &Criterion::at_stmt(p.at_line(10)));
        assert_eq!(correct.lines(&p), vec![1, 2, 3, 4, 5, 10]);
    }

    #[test]
    fn target_blocks_are_straight_line() {
        let p = corpus::fig16();
        let a = Analysis::new(&p);
        // goto L6 (line 4) targets the if on line 6, a block of its own.
        let block = target_block(&a, p.at_line(4));
        let lines: Vec<usize> = block.iter().map(|&s| p.line_of(s)).collect();
        assert_eq!(lines, vec![6]);
        // goto L10 (line 8) targets write(y); write(z) follows in the block.
        let block = target_block(&a, p.at_line(8));
        let lines: Vec<usize> = block.iter().map(|&s| p.line_of(s)).collect();
        assert_eq!(lines, vec![10, 11]);
    }
}
