//! Program slicing in the presence of jump statements — a full
//! implementation of Hiralal Agrawal, *"On Slicing Programs with Jump
//! Statements"*, PLDI 1994.
//!
//! The conventional PDG-reachability slicer never includes `goto`, `break`,
//! `continue`, or `return` statements (nothing is data or control dependent
//! on them), so its slices are wrong for programs that contain them. This
//! crate implements:
//!
//! * [`conventional_slice`] — the classic transitive-closure slicer (§2),
//!   with the paper's conditional-jump adaptation via fused
//!   conditional-goto nodes;
//! * [`agrawal_slice`] — the paper's **Figure 7** algorithm: repeat preorder
//!   traversals of the postdominator tree, adding every jump whose nearest
//!   postdominator *in the slice* differs from its nearest lexical successor
//!   *in the slice* (plus its dependence closure), then re-associate
//!   dangling labels;
//! * [`structured_slice`] — **Figure 12**: the one-traversal simplification
//!   valid for structured programs;
//! * [`conservative_slice`] — **Figure 13**: the on-the-fly approximation
//!   that needs neither the postdominator tree nor the lexical successor
//!   tree;
//! * the [`LexSuccTree`] itself (§3) and the structuredness classifier (§4);
//! * the related-work baselines of §5 ([`baselines`]): Ball–Horwitz /
//!   Choi–Ferrante augmented-PDG slicing, Lyle's, Gallagher's, and the
//!   Jiang–Zhou–Robson rule set;
//! * the paper's sixteen figure programs as a ready-made [`corpus`].
//!
//! # Quick start
//!
//! ```
//! use jumpslice_core::{Analysis, Criterion, agrawal_slice, conventional_slice};
//! use jumpslice_lang::parse;
//!
//! let p = parse(
//!     "positives = 0;
//!      L3: if (eof()) goto L14;
//!      read(x);
//!      if (x > 0) goto L8;
//!      goto L3;
//!      L8: positives = positives + 1;
//!      goto L3;
//!      L14: write(positives);",
//! )?;
//! let a = Analysis::new(&p);
//! let crit = Criterion::at_stmt(p.at_line(8));
//!
//! let conv = conventional_slice(&a, &crit);
//! let full = agrawal_slice(&a, &crit);
//! // The conventional slice drops every unconditional goto; the paper's
//! // algorithm keeps the ones control flow needs.
//! assert!(conv.stmts.len() < full.stmts.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agrawal;
mod analysis;
pub mod baselines;
mod batch;
pub mod cancel;
mod chop;
mod conservative;
mod conventional;
pub mod corpus;
mod labels;
mod lexsucc;
mod provenance;
mod slice;
mod snapshot;
mod sparse;
mod structured;
pub mod synthesize;
mod wire;

pub use agrawal::{agrawal_slice, agrawal_slice_reference, agrawal_slice_with_order};
pub use analysis::{Analysis, AnalysisSeed, AnalysisStats};
pub use batch::{BatchPanic, BatchRunStats, BatchSlicer, SliceFn};
pub use chop::{chop, chop_executable, forward_slice};
pub use conservative::conservative_slice;
pub use conventional::{conventional_slice, Criterion};
pub use labels::reassociate_labels;
pub use lexsucc::LexSuccTree;
pub use provenance::{agrawal_slice_traced, agrawal_slice_traced_reference, Provenance, Why};
pub use slice::{Slice, SlicePoint};
pub use snapshot::{decode_snapshot, encode_snapshot, Snapshot, SnapshotError};
pub use sparse::ChainIndex;
pub use structured::{has_pdom_lexsucc_pair, is_structured, structured_slice};
