//! Choi–Ferrante's *second* algorithm (paper §5, \[8\]): executable slices
//! built by **synthesizing fresh jump statements** instead of reusing the
//! program's own.
//!
//! The paper describes it thus: start from the conventional slice; then,
//! rather than hunting for which original jumps to keep, *construct new
//! jump statements* that make the kept statements execute in the right
//! order. The result "may lead to construction of smaller slices" but "is
//! not constrained to be a subprogram of the original program" and "may
//! cause the relative nesting structure of statements ... to be different".
//!
//! This module implements that idea as a flattening pass: the slice
//! statements are emitted in lexical order as a *flat* program; every
//! statement learns its unique "next slice statement" by walking the
//! original flowgraph across non-slice nodes, and a `goto` (or a
//! conditional-goto pair for predicates) is synthesized wherever that next
//! statement is not the textually following one.
//!
//! Two implementation choices are documented rather than hidden:
//!
//! * When the two branches of a *non-slice* predicate reach different first
//!   slice statements (possible when jumps hide the divergence from
//!   unaugmented control dependence), the predicate is promoted into the
//!   slice and the walk restarts — re-deriving on demand what Choi–Ferrante
//!   get from their augmented control-dependence graph.
//! * `switch` statements inside the slice are not supported (`Err`): the
//!   original algorithm targets goto-language programs, and flattening a
//!   multi-way dispatch would mean inventing syntax the paper never
//!   discusses.
//!
//! Correctness is checked with the same projection oracle as everything
//! else, via `jumpslice_interp::run_with_sites` and the
//! [`SynthesizedSlice::site_key`] mapping.

use crate::{conventional_slice, Analysis, Criterion};
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::StmtSet;
use jumpslice_graph::NodeId;
use jumpslice_lang::{Expr, Program, ProgramBuilder, StmtId, StmtKind};
use std::collections::BTreeMap;

/// The output of [`synthesize_slice`]: a standalone flat program plus the
/// mapping from its statements back to the original's.
#[derive(Clone, Debug)]
pub struct SynthesizedSlice {
    /// The synthesized executable program.
    pub program: Program,
    /// For each statement of `program` (by arena index): the original
    /// statement it re-emits, or `None` for synthesized jumps.
    pub origin: Vec<Option<StmtId>>,
    /// The statements of the *original* program represented in the slice.
    pub stmts: StmtSet,
}

impl SynthesizedSlice {
    /// Site-key function for `jumpslice_interp::run_with_sites`: maps a
    /// synthesized statement to its original's input-stream site, so both
    /// programs draw identical `read`/`eof` values.
    pub fn site_key(&self) -> impl Fn(StmtId) -> u64 + '_ {
        move |s| match self.origin.get(s.index()).copied().flatten() {
            Some(orig) => orig.index() as u64,
            // Synthesized jumps never read input; any stable key works.
            None => u64::MAX - s.index() as u64,
        }
    }

    /// The original statement behind a synthesized one, if any.
    pub fn origin_of(&self, s: StmtId) -> Option<StmtId> {
        self.origin.get(s.index()).copied().flatten()
    }
}

/// Errors from [`synthesize_slice`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthesizeError {
    /// The slice contains a `switch`, which the flattening does not support.
    SwitchInSlice(StmtId),
}

impl std::fmt::Display for SynthesizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesizeError::SwitchInSlice(s) => {
                write!(
                    f,
                    "slice contains a switch statement ({s:?}); flattening unsupported"
                )
            }
        }
    }
}

impl std::error::Error for SynthesizeError {}

/// Where the synthesized control transfers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Next {
    Stmt(StmtId),
    Exit,
}

/// Builds a Choi–Ferrante-style executable slice for `crit`.
///
/// # Errors
///
/// Returns [`SynthesizeError::SwitchInSlice`] when the conventional slice
/// (or a divergence-promoted predicate) is a `switch`.
///
/// # Examples
///
/// ```
/// use jumpslice_core::{corpus, synthesize::synthesize_slice, Analysis, Criterion};
/// let p = corpus::fig3();
/// let a = Analysis::new(&p);
/// let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(15)))?;
/// // Executable, yet needs no closure over the original gotos: it is
/// // *smaller* than the Figure 7 slice (8 statements there).
/// assert!(s.stmts.len() < 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_slice(
    a: &Analysis<'_>,
    crit: &Criterion,
) -> Result<SynthesizedSlice, SynthesizeError> {
    let prog = a.prog();
    let cfg = a.cfg();
    let mut slice = conventional_slice(a, crit).stmts;

    // Promote divergent non-slice predicates until every node has a unique
    // next-slice statement (§ module docs).
    let next = loop {
        match compute_next(prog, cfg, &slice) {
            Ok(next) => break next,
            Err(divergent) => {
                let inserted = slice.insert(divergent);
                debug_assert!(inserted, "divergent predicate already in slice");
                // Its data/control closure keeps predicate inputs meaningful.
                a.pdg().backward_closure_into([divergent], &mut slice);
            }
        }
    };

    for s in slice.iter() {
        if matches!(prog.stmt(s).kind, StmtKind::Switch { .. }) {
            return Err(SynthesizeError::SwitchInSlice(s));
        }
    }

    // Emit the flat program in lexical order.
    let ordered: Vec<StmtId> = prog
        .lexical_order()
        .into_iter()
        .filter(|&s| slice.contains(s))
        .collect();
    let label_of = |s: StmtId| format!("S{}", s.index());

    let mut b = ProgramBuilder::new();
    let mut origin: Vec<Option<StmtId>> = Vec::new();
    fn emit(origin: &mut Vec<Option<StmtId>>, o: Option<StmtId>, id: StmtId) {
        debug_assert_eq!(id.index(), origin.len());
        origin.push(o);
    }

    // Control may enter at a statement other than the first emitted one.
    let entry_next = entry_next(prog, cfg, &next);
    let jump_to = |b: &mut ProgramBuilder, origin: &mut Vec<Option<StmtId>>, n: Next| match n {
        Next::Stmt(t) => {
            let id = b.goto(&label_of(t));
            origin.push(None);
            debug_assert_eq!(id.index() + 1, origin.len());
        }
        Next::Exit => {
            let _ = b.ret(None);
            origin.push(None);
        }
    };

    match entry_next {
        Next::Stmt(first) if ordered.first() == Some(&first) => {}
        n => jump_to(&mut b, &mut origin, n),
    }

    for (i, &s) in ordered.iter().enumerate() {
        let textual_next = ordered.get(i + 1).copied();
        b.label(&label_of(s));
        match &prog.stmt(s).kind {
            StmtKind::Assign { lhs, rhs } => {
                let e = clone_expr(&mut b, prog, rhs);
                let name = prog.name_str(*lhs).to_owned();
                let id = b.assign(&name, e);
                emit(&mut origin, Some(s), id);
                seq_transfer(
                    prog,
                    cfg,
                    &next,
                    s,
                    textual_next,
                    &mut b,
                    &mut origin,
                    &label_of,
                );
            }
            StmtKind::Read { var } => {
                let name = prog.name_str(*var).to_owned();
                let id = b.read(&name);
                emit(&mut origin, Some(s), id);
                seq_transfer(
                    prog,
                    cfg,
                    &next,
                    s,
                    textual_next,
                    &mut b,
                    &mut origin,
                    &label_of,
                );
            }
            StmtKind::Write { arg } => {
                let e = clone_expr(&mut b, prog, arg);
                let id = b.write(e);
                emit(&mut origin, Some(s), id);
                seq_transfer(
                    prog,
                    cfg,
                    &next,
                    s,
                    textual_next,
                    &mut b,
                    &mut origin,
                    &label_of,
                );
            }
            StmtKind::Skip => {
                let id = b.skip();
                emit(&mut origin, Some(s), id);
                seq_transfer(
                    prog,
                    cfg,
                    &next,
                    s,
                    textual_next,
                    &mut b,
                    &mut origin,
                    &label_of,
                );
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::DoWhile { cond, .. }
            | StmtKind::CondGoto { cond, .. } => {
                let (t_node, f_node) = cfg
                    .branch_succs(prog, cfg.node(s))
                    .expect("two-way predicate");
                let t_next = next_of(&next, t_node);
                let f_next = next_of(&next, f_node);
                let e = clone_expr(&mut b, prog, cond);
                // `if (cond) goto T;` then transfer to F (fall through when
                // F is the textually next statement).
                match t_next {
                    Next::Stmt(t) => {
                        let id = b.cond_goto(e, &label_of(t));
                        emit(&mut origin, Some(s), id);
                    }
                    Next::Exit => {
                        // `if (cond) goto SEXIT` — model exit via a trailing
                        // return label; simplest encoding: invert is not
                        // available, so emit cond_goto to a synthesized
                        // trailing return.
                        let id = b.cond_goto(e, "SEXIT");
                        emit(&mut origin, Some(s), id);
                    }
                }
                if f_next != textual_next.map(Next::Stmt).unwrap_or(Next::Exit) {
                    match f_next {
                        Next::Stmt(t) => jump_to(&mut b, &mut origin, Next::Stmt(t)),
                        Next::Exit => jump_to(&mut b, &mut origin, Next::Exit),
                    }
                } else if f_next == Next::Exit && textual_next.is_none() {
                    // Falling off the end is the exit; nothing to emit.
                }
            }
            StmtKind::Switch { .. } => unreachable!("rejected above"),
            StmtKind::Goto { .. }
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Return { .. } => {
                unreachable!("conventional slices never contain unconditional jumps")
            }
        }
    }

    // Trailing exit label for conditional transfers to the exit.
    b.label("SEXIT");
    let _ = b.ret(None);
    origin.push(None);

    let program = b.build().expect("synthesized program is well-formed");
    debug_assert_eq!(program.len(), origin.len());
    Ok(SynthesizedSlice {
        program,
        origin,
        stmts: slice,
    })
}

/// Emits the transfer after a straight-line statement: nothing when the
/// runtime successor is the textually next statement, a goto/return
/// otherwise.
#[allow(clippy::too_many_arguments)]
fn seq_transfer(
    prog: &Program,
    cfg: &Cfg,
    next: &BTreeMap<usize, Next>,
    s: StmtId,
    textual_next: Option<StmtId>,
    b: &mut ProgramBuilder,
    origin: &mut Vec<Option<StmtId>>,
    label_of: &dyn Fn(StmtId) -> String,
) {
    let _ = prog;
    let node = cfg.node(s);
    let succ = cfg.graph().succs(node)[0];
    let n = next_of(next, succ);
    let fallthrough = textual_next.map(Next::Stmt).unwrap_or(Next::Exit);
    if n != fallthrough {
        match n {
            Next::Stmt(t) => {
                b.goto(&label_of(t));
                origin.push(None);
            }
            Next::Exit => {
                b.ret(None);
                origin.push(None);
            }
        }
    }
}

fn next_of(next: &BTreeMap<usize, Next>, node: NodeId) -> Next {
    next[&node.index()]
}

/// Where control first meets the slice from the program entry (skipping the
/// dummy `Entry -> Exit` edge).
fn entry_next(prog: &Program, cfg: &Cfg, next: &BTreeMap<usize, Next>) -> Next {
    let _ = prog;
    let real: Vec<NodeId> = cfg
        .graph()
        .succs(cfg.entry())
        .iter()
        .copied()
        .filter(|&n| n != cfg.exit())
        .collect();
    match real.first() {
        Some(&n) => next_of(next, n),
        None => Next::Exit,
    }
}

/// Fixpoint: for every node, the unique first slice statement reached from
/// it (itself, if it is one). `Err(predicate)` reports a non-slice node
/// whose successors disagree.
fn compute_next(
    prog: &Program,
    cfg: &Cfg,
    slice: &StmtSet,
) -> Result<BTreeMap<usize, Next>, StmtId> {
    let g = cfg.graph();
    let mut next: BTreeMap<usize, Next> = BTreeMap::new();
    next.insert(cfg.exit().index(), Next::Exit);
    for s in slice.iter() {
        next.insert(cfg.node(s).index(), Next::Stmt(s));
    }
    // Backward propagation to a fixpoint (values only go unknown -> known).
    let mut changed = true;
    while changed {
        changed = false;
        for n in g.nodes() {
            if next.contains_key(&n.index()) {
                continue;
            }
            let known: Vec<Next> = g
                .succs(n)
                .iter()
                .filter(|&&m| !(n == cfg.entry() && m == cfg.exit()))
                .filter_map(|m| next.get(&m.index()).copied())
                .collect();
            let Some(&first) = known.first() else {
                continue;
            };
            if known.iter().any(|&k| k != first) {
                // Divergent non-slice node: must be a statement (entry's
                // dummy edge is filtered above).
                let s = cfg.stmt(n).expect("divergence only at predicates");
                debug_assert!(prog.stmt(s).kind.is_predicate() || g.succs(n).len() > 1);
                return Err(s);
            }
            next.insert(n.index(), first);
            changed = true;
        }
    }
    // Nodes never resolved sit in non-slice cycles that cannot reach a
    // slice statement without leaving the cycle; any execution that enters
    // them either exits through a resolved neighbor or never touches the
    // slice again — map them to Exit.
    for n in g.nodes() {
        next.entry(n.index()).or_insert(Next::Exit);
    }
    Ok(next)
}

/// Re-interns an expression of `src` into the builder's program.
fn clone_expr(b: &mut ProgramBuilder, src: &Program, e: &Expr) -> Expr {
    match e {
        Expr::Num(n) => Expr::Num(*n),
        Expr::Var(v) => b.var(src.name_str(*v)),
        Expr::Unary(op, inner) => Expr::un(*op, clone_expr(b, src, inner)),
        Expr::Binary(op, l, r) => {
            let l = clone_expr(b, src, l);
            let r = clone_expr(b, src, r);
            Expr::bin(*op, l, r)
        }
        Expr::Call(f, args) => {
            let name = src.name_str(*f).to_owned();
            let args = args.iter().map(|x| clone_expr(b, src, x)).collect();
            b.call(&name, args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn fig3_synthesized_slice_is_flat_and_small() {
        let p = corpus::fig3();
        let a = Analysis::new(&p);
        let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(15))).unwrap();
        // The represented original statements are just the conventional
        // slice — no original gotos, no closure over them.
        let lines: Vec<usize> = s.stmts.iter().map(|x| p.line_of(x)).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 8, 15]);
        // Smaller than the Figure 7 slice (8 statements), even counting the
        // synthesized jumps.
        assert!(s.stmts.len() < 8);
        // Flat: no compound statements in the output.
        for st in s.program.stmt_ids() {
            assert!(!s.program.stmt(st).kind.is_compound());
        }
    }

    #[test]
    fn fig10_synthesis_promotes_divergent_predicate() {
        let p = corpus::fig10();
        let a = Analysis::new(&p);
        let s = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(9))).unwrap();
        // The conventional slice is {3, 9}; flattening must discover that
        // the if on line 1 routes control differently... or produce a
        // working program regardless; the oracle test below is the real
        // judge. Here: origin mapping is consistent.
        for st in s.program.stmt_ids() {
            if let Some(orig) = s.origin_of(st) {
                assert!(s.stmts.contains(orig));
            }
        }
    }

    #[test]
    fn switch_is_rejected() {
        let p = corpus::fig14();
        let a = Analysis::new(&p);
        let err = synthesize_slice(&a, &Criterion::at_stmt(p.at_line(9))).unwrap_err();
        assert!(matches!(err, SynthesizeError::SwitchInSlice(_)));
        assert!(err.to_string().contains("switch"));
    }
}
