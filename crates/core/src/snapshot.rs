//! The analysis-snapshot codec: [`AnalysisSeed`] ⇄ a flat byte payload.
//!
//! A snapshot captures everything expensive about a finished analysis — the
//! reaching-definitions solution, both PDG halves, the postdominator tree,
//! the lexical successor tree, and the sparse kernel's chain index — next
//! to the program source it was computed from. The daemon's snapshot store
//! persists these payloads so a restarted process can serve its first slice
//! without re-running any fixpoint.
//!
//! Two properties make the format safe and the restore fast:
//!
//! * **The program and its flowgraph travel with the artifacts.** An
//!   earlier draft of this codec stored only the source text and re-parsed
//!   it at decode time ("the source is the schema"), but the re-parse and
//!   flowgraph rebuild dominated restore latency — exactly the cost a
//!   snapshot exists to avoid. The payload therefore carries the parsed
//!   [`Program`] in wire form (intern tables, statement arena, block tree,
//!   label map) and the [`Cfg`] (successor lists, fall-throughs), next to
//!   the source text itself. The source stays embedded because callers
//!   that map snapshots by content hash must compare it against the
//!   request's source byte-for-byte — that comparison, not the hash, is
//!   what makes a key collision harmless.
//! * **Decoding validates, never trusts.** Every count is bounded, every
//!   index is range-checked, and the decoded program must pass
//!   [`Program::from_parts`]'s structural audit (block-tree bijection,
//!   label consistency, intern-table well-formedness); any violation is a
//!   [`SnapshotError`] — the caller falls back to analyzing from source.
//!   Semantic fidelity (that these artifacts really belong to this source)
//!   is the job of the store's whole-record checksum one layer up, and
//!   analyzability (every statement reaches the exit) is re-established by
//!   whoever builds a session from the seed; this module only defines the
//!   payload.
//!
//! The encoding is little-endian throughout: counts and indices as `u32`
//! (`u32::MAX` = "none"), tags as single bytes, strings length-prefixed,
//! bitsets as their capacity plus raw words.

use crate::wire::{self, Reader};
use crate::{AnalysisSeed, LexSuccTree, SlicePoint};
use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{BitSet, DataDeps, ReachingDefs, VarTable};
use jumpslice_graph::{DiGraph, DomTree, NodeId};
use jumpslice_lang::{
    BinOp, CaseGuard, Expr, Label, Name, Program, Stmt, StmtId, StmtKind, SwitchArm, UnOp,
};
use jumpslice_pdg::{ControlDeps, Pdg};
use std::fmt;

/// Why a snapshot payload was rejected. Every variant is a clean "rebuild
/// from source instead" signal; none of them is a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A field ended early, a count exceeded its bound, an index was out of
    /// range, the program section failed its structural audit, or trailing
    /// bytes followed the last artifact.
    Malformed,
    /// The embedded source text is not UTF-8.
    BadSource,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotError::Malformed => "malformed snapshot payload",
            SnapshotError::BadSource => "embedded source is not UTF-8",
        })
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot: the embedded source, its decoded program, and the
/// restored artifacts ready for [`crate::Analysis::with_seed`].
#[derive(Debug)]
pub struct Snapshot {
    /// The program text the artifacts were computed from.
    pub source: String,
    /// The embedded program, decoded from its wire form (never re-parsed).
    /// For payloads produced by [`encode_snapshot`] this is equal to the
    /// parse of `source`, statement ids and all — parsing is deterministic
    /// and the encoder reads the parts straight off the parsed program.
    pub prog: Program,
    /// The restored artifacts (always includes the flowgraph; absent
    /// artifacts were never forced before the snapshot was taken).
    pub seed: AnalysisSeed,
}

/// Expression nesting deeper than this is rejected at decode. The decoder
/// recurses over expressions (statement decoding is flat), so hostile
/// bytes must not get to choose the recursion depth; no plausible source —
/// the parser itself recurses comparably — gets anywhere near this.
const MAX_EXPR_DEPTH: usize = 512;

const HAS_REACHING: u32 = 1 << 0;
const HAS_PDG: u32 = 1 << 1;
const HAS_PDOM: u32 = 1 << 2;
const HAS_LST: u32 = 1 << 3;
const HAS_CHAIN: u32 = 1 << 4;
const KNOWN_BITS: u32 = HAS_REACHING | HAS_PDG | HAS_PDOM | HAS_LST | HAS_CHAIN;

/// Serializes `seed`'s artifacts (with `source` and `prog` embedded) into a
/// snapshot payload. `prog` must be the parse of `source` that the seed's
/// artifacts were computed against; absent artifacts are simply skipped.
/// The flowgraph is encoded from the seed (or built here if the seed never
/// carried one) so the decoder can skip [`Cfg::build`] entirely.
pub fn encode_snapshot(source: &str, prog: &Program, seed: &AnalysisSeed) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_bytes(&mut out, source.as_bytes());
    encode_program(&mut out, prog);
    let built;
    let cfg = match &seed.cfg {
        Some(c) => c,
        None => {
            built = Cfg::build(prog);
            &built
        }
    };
    encode_cfg(&mut out, cfg);
    let mut bits = 0u32;
    for (bit, present) in [
        (HAS_REACHING, seed.reaching.is_some()),
        (HAS_PDG, seed.pdg.is_some()),
        (HAS_PDOM, seed.pdom.is_some()),
        (HAS_LST, seed.lst.is_some()),
        (HAS_CHAIN, seed.chain_index.is_some()),
    ] {
        if present {
            bits |= bit;
        }
    }
    wire::put_u32(&mut out, bits);
    if let Some(rd) = &seed.reaching {
        framed(&mut out, |out| encode_reaching(out, rd));
    }
    if let Some(pdg) = &seed.pdg {
        framed(&mut out, |out| encode_pdg(out, prog, pdg));
    }
    if let Some(pdom) = &seed.pdom {
        framed(&mut out, |out| encode_pdom(out, pdom));
    }
    if let Some(lst) = &seed.lst {
        framed(&mut out, |out| encode_lst(out, lst));
    }
    if let Some(ci) = &seed.chain_index {
        framed(&mut out, |out| ci.encode_into(out));
    }
    out
}

/// Encodes one artifact section behind a byte-length prefix, patched in
/// after the section body is written (no staging buffer). The prefix lets
/// the decoder split sections apart up front and decode them in parallel.
fn framed(out: &mut Vec<u8>, body: impl FnOnce(&mut Vec<u8>)) {
    let mark = out.len();
    wire::put_u32(out, 0);
    body(out);
    let len = u32::try_from(out.len() - mark - 4).expect("section fits u32");
    out[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decodes a snapshot payload, validating the program section structurally
/// and every artifact against it. Any malformation is an error, not a
/// panic; the caller is expected to fall back to a from-source build.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    use SnapshotError::*;
    let mut r = Reader::new(bytes);
    let source = std::str::from_utf8(r.byte_str().ok_or(Malformed)?)
        .map_err(|_| BadSource)?
        .to_owned();
    let prog = decode_program(&mut r)?;
    let cfg = decode_cfg(&mut r, prog.len())?;
    let bits = r.u32().ok_or(Malformed)?;
    if bits & !KNOWN_BITS != 0 {
        return Err(Malformed);
    }
    fn section<'a>(
        r: &mut Reader<'a>,
        bits: u32,
        bit: u32,
    ) -> Result<Option<&'a [u8]>, SnapshotError> {
        if bits & bit == 0 {
            return Ok(None);
        }
        let n = r.len(r.remaining()).ok_or(SnapshotError::Malformed)?;
        Ok(Some(r.bytes(n).ok_or(SnapshotError::Malformed)?))
    }
    let reaching_b = section(&mut r, bits, HAS_REACHING)?;
    let pdg_b = section(&mut r, bits, HAS_PDG)?;
    let pdom_b = section(&mut r, bits, HAS_PDOM)?;
    let lst_b = section(&mut r, bits, HAS_LST)?;
    let chain_b = section(&mut r, bits, HAS_CHAIN)?;
    if r.remaining() != 0 {
        return Err(Malformed);
    }

    // Per-section decoders over the split-off byte ranges; each section
    // must be consumed exactly — a length prefix lying either way about
    // its section's extent is malformed.
    let n = prog.len();
    let dec_reaching = |b: &[u8]| {
        let mut r = Reader::new(b);
        drained(decode_reaching(&mut r, &prog, &cfg)?, &r)
    };
    let dec_pdg = |b: &[u8]| {
        let mut r = Reader::new(b);
        drained(decode_pdg(&mut r, n)?, &r)
    };
    let dec_pdom = |b: &[u8]| {
        let mut r = Reader::new(b);
        drained(decode_pdom(&mut r, &cfg)?, &r)
    };
    let dec_lst = |b: &[u8]| {
        let mut r = Reader::new(b);
        drained(decode_lst(&mut r, n)?, &r)
    };
    let dec_chain = |b: &[u8]| {
        let mut r = Reader::new(b);
        let ci = crate::sparse::ChainIndex::decode_from(&mut r, n).ok_or(Malformed)?;
        drained(ci, &r)
    };

    let heavy_bytes = reaching_b.map_or(0, <[u8]>::len)
        + pdg_b.map_or(0, <[u8]>::len)
        + chain_b.map_or(0, <[u8]>::len);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (reaching, pdg, chain, pdom, lst) = if cores > 1 && heavy_bytes >= PARALLEL_DECODE_BYTES {
        // The three heavy sections decode on their own threads while the
        // main thread takes the two cheap trees; sections only read the
        // already-decoded program and flowgraph, so they are independent.
        let (rr, pr, cr, dr, lr) = std::thread::scope(|s| {
            let (f_r, f_p, f_c) = (&dec_reaching, &dec_pdg, &dec_chain);
            let rt = reaching_b.map(|b| s.spawn(move || f_r(b)));
            let pt = pdg_b.map(|b| s.spawn(move || f_p(b)));
            let ct = chain_b.map(|b| s.spawn(move || f_c(b)));
            let pdom = pdom_b.map(&dec_pdom).transpose();
            let lst = lst_b.map(&dec_lst).transpose();
            (
                join_section(rt),
                join_section(pt),
                join_section(ct),
                pdom,
                lst,
            )
        });
        (rr?, pr?, cr?, dr?, lr?)
    } else {
        (
            reaching_b.map(&dec_reaching).transpose()?,
            pdg_b.map(&dec_pdg).transpose()?,
            chain_b.map(&dec_chain).transpose()?,
            pdom_b.map(&dec_pdom).transpose()?,
            lst_b.map(&dec_lst).transpose()?,
        )
    };

    let seed = AnalysisSeed {
        cfg: Some(cfg),
        pdom,
        pdg,
        lst,
        reaching,
        chain_index: chain,
    };
    Ok(Snapshot { source, prog, seed })
}

/// Below this many bytes of heavy artifact sections the thread-spawn cost
/// outweighs the overlap and the sections decode inline.
const PARALLEL_DECODE_BYTES: usize = 64 * 1024;

/// Accepts a decoded section only when its reader was consumed exactly.
fn drained<T>(v: T, r: &Reader<'_>) -> Result<T, SnapshotError> {
    if r.remaining() == 0 {
        Ok(v)
    } else {
        Err(SnapshotError::Malformed)
    }
}

/// Joins an optional section-decode thread. A panicking decoder would be a
/// bug, but the store's contract is that a bad record degrades to a
/// from-source rebuild — so a panic classifies as malformed rather than
/// taking the daemon down with it.
fn join_section<T>(
    h: Option<std::thread::ScopedJoinHandle<'_, Result<T, SnapshotError>>>,
) -> Result<Option<T>, SnapshotError> {
    match h {
        None => Ok(None),
        Some(h) => match h.join() {
            Ok(v) => v.map(Some),
            Err(_) => Err(SnapshotError::Malformed),
        },
    }
}

// ---- program section ---------------------------------------------------
//
// Ids in this section are *raw* — not range-checked as they are read.
// `Program::from_parts` audits every one of them in a single pass at the
// end, so the readers here only bound counts (each element costs at least
// its wire size) to keep hostile lengths from becoming giant allocations.

fn encode_program(out: &mut Vec<u8>, prog: &Program) {
    wire::put_len(out, prog.num_names());
    for n in prog.all_names() {
        wire::put_bytes(out, prog.name_str(n).as_bytes());
    }
    wire::put_len(out, prog.num_labels());
    for l in prog.all_labels() {
        wire::put_bytes(out, prog.label_str(l).as_bytes());
    }
    for l in prog.all_labels() {
        put_opt_stmt(out, prog.label_target(l));
    }
    wire::put_len(out, prog.len());
    for s in prog.stmt_ids() {
        encode_stmt(out, prog.stmt(s));
    }
    wire::put_len(out, prog.body().len());
    for &s in prog.body() {
        wire::put_len(out, s.index());
    }
}

fn decode_program(r: &mut Reader<'_>) -> Result<Program, SnapshotError> {
    use SnapshotError::Malformed;
    fn utf8_string(r: &mut Reader<'_>) -> Result<String, SnapshotError> {
        Ok(std::str::from_utf8(r.byte_str().ok_or(Malformed)?)
            .map_err(|_| Malformed)?
            .to_owned())
    }
    let n_names = r.len(r.remaining() / 4).ok_or(Malformed)?;
    let names = (0..n_names)
        .map(|_| utf8_string(r))
        .collect::<Result<Vec<_>, _>>()?;
    let n_labels = r.len(r.remaining() / 4).ok_or(Malformed)?;
    let labels = (0..n_labels)
        .map(|_| utf8_string(r))
        .collect::<Result<Vec<_>, _>>()?;
    let label_targets = (0..n_labels)
        .map(|_| raw_opt_stmt(r))
        .collect::<Result<Vec<_>, _>>()?;
    // A statement costs at least tag + label count + line = 9 bytes.
    let n_stmts = r.len(r.remaining() / 9).ok_or(Malformed)?;
    let stmts = (0..n_stmts)
        .map(|_| decode_stmt(r))
        .collect::<Result<Vec<_>, _>>()?;
    let body = raw_stmt_list(r)?;
    Program::from_parts(stmts, body, names, labels, label_targets).ok_or(Malformed)
}

fn put_stmt_ids(out: &mut Vec<u8>, ids: &[StmtId]) {
    wire::put_len(out, ids.len());
    for &s in ids {
        wire::put_len(out, s.index());
    }
}

fn encode_stmt(out: &mut Vec<u8>, s: &Stmt) {
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            wire::put_u8(out, 0);
            wire::put_len(out, lhs.index());
            encode_expr(out, rhs);
        }
        StmtKind::Read { var } => {
            wire::put_u8(out, 1);
            wire::put_len(out, var.index());
        }
        StmtKind::Write { arg } => {
            wire::put_u8(out, 2);
            encode_expr(out, arg);
        }
        StmtKind::Skip => wire::put_u8(out, 3),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            wire::put_u8(out, 4);
            encode_expr(out, cond);
            put_stmt_ids(out, then_branch);
            put_stmt_ids(out, else_branch);
        }
        StmtKind::While { cond, body } => {
            wire::put_u8(out, 5);
            encode_expr(out, cond);
            put_stmt_ids(out, body);
        }
        StmtKind::DoWhile { body, cond } => {
            wire::put_u8(out, 6);
            put_stmt_ids(out, body);
            encode_expr(out, cond);
        }
        StmtKind::Switch { scrutinee, arms } => {
            wire::put_u8(out, 7);
            encode_expr(out, scrutinee);
            wire::put_len(out, arms.len());
            for arm in arms {
                wire::put_len(out, arm.guards.len());
                for g in &arm.guards {
                    match g {
                        CaseGuard::Case(v) => {
                            wire::put_u8(out, 0);
                            wire::put_u64(out, *v as u64);
                        }
                        CaseGuard::Default => wire::put_u8(out, 1),
                    }
                }
                put_stmt_ids(out, &arm.body);
            }
        }
        StmtKind::Goto { target } => {
            wire::put_u8(out, 8);
            wire::put_len(out, target.index());
        }
        StmtKind::CondGoto { cond, target } => {
            wire::put_u8(out, 9);
            encode_expr(out, cond);
            wire::put_len(out, target.index());
        }
        StmtKind::Break => wire::put_u8(out, 10),
        StmtKind::Continue => wire::put_u8(out, 11),
        StmtKind::Return { value } => {
            wire::put_u8(out, 12);
            match value {
                Some(e) => {
                    wire::put_u8(out, 1);
                    encode_expr(out, e);
                }
                None => wire::put_u8(out, 0),
            }
        }
    }
    wire::put_len(out, s.labels.len());
    for &l in &s.labels {
        wire::put_len(out, l.index());
    }
    wire::put_u32(out, s.line);
}

fn decode_stmt(r: &mut Reader<'_>) -> Result<Stmt, SnapshotError> {
    use SnapshotError::Malformed;
    let kind = match r.u8().ok_or(Malformed)? {
        0 => StmtKind::Assign {
            lhs: raw_name(r)?,
            rhs: decode_expr(r, 0)?,
        },
        1 => StmtKind::Read { var: raw_name(r)? },
        2 => StmtKind::Write {
            arg: decode_expr(r, 0)?,
        },
        3 => StmtKind::Skip,
        4 => StmtKind::If {
            cond: decode_expr(r, 0)?,
            then_branch: raw_stmt_list(r)?,
            else_branch: raw_stmt_list(r)?,
        },
        5 => StmtKind::While {
            cond: decode_expr(r, 0)?,
            body: raw_stmt_list(r)?,
        },
        6 => StmtKind::DoWhile {
            body: raw_stmt_list(r)?,
            cond: decode_expr(r, 0)?,
        },
        7 => {
            let scrutinee = decode_expr(r, 0)?;
            let n_arms = r.len(r.remaining() / 4).ok_or(Malformed)?;
            let arms = (0..n_arms)
                .map(|_| decode_arm(r))
                .collect::<Result<Vec<_>, _>>()?;
            StmtKind::Switch { scrutinee, arms }
        }
        8 => StmtKind::Goto {
            target: raw_label(r)?,
        },
        9 => StmtKind::CondGoto {
            cond: decode_expr(r, 0)?,
            target: raw_label(r)?,
        },
        10 => StmtKind::Break,
        11 => StmtKind::Continue,
        12 => StmtKind::Return {
            value: match r.u8().ok_or(Malformed)? {
                0 => None,
                1 => Some(decode_expr(r, 0)?),
                _ => return Err(Malformed),
            },
        },
        _ => return Err(Malformed),
    };
    let n_labels = r.len(r.remaining() / 4).ok_or(Malformed)?;
    let labels = (0..n_labels)
        .map(|_| raw_label(r))
        .collect::<Result<Vec<_>, _>>()?;
    let line = r.u32().ok_or(Malformed)?;
    Ok(Stmt { kind, labels, line })
}

fn decode_arm(r: &mut Reader<'_>) -> Result<SwitchArm, SnapshotError> {
    use SnapshotError::Malformed;
    let n_guards = r.len(r.remaining()).ok_or(Malformed)?;
    let guards = (0..n_guards)
        .map(|_| {
            Ok(match r.u8().ok_or(Malformed)? {
                0 => CaseGuard::Case(r.u64().ok_or(Malformed)? as i64),
                1 => CaseGuard::Default,
                _ => return Err(Malformed),
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let body = raw_stmt_list(r)?;
    Ok(SwitchArm { guards, body })
}

fn encode_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Num(v) => {
            wire::put_u8(out, 0);
            wire::put_u64(out, *v as u64);
        }
        Expr::Var(n) => {
            wire::put_u8(out, 1);
            wire::put_len(out, n.index());
        }
        Expr::Unary(op, a) => {
            wire::put_u8(out, 2);
            wire::put_u8(out, un_op_code(*op));
            encode_expr(out, a);
        }
        Expr::Binary(op, l, r) => {
            wire::put_u8(out, 3);
            wire::put_u8(out, bin_op_code(*op));
            encode_expr(out, l);
            encode_expr(out, r);
        }
        Expr::Call(f, args) => {
            wire::put_u8(out, 4);
            wire::put_len(out, f.index());
            wire::put_len(out, args.len());
            for a in args {
                encode_expr(out, a);
            }
        }
    }
}

fn decode_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, SnapshotError> {
    use SnapshotError::Malformed;
    if depth >= MAX_EXPR_DEPTH {
        return Err(Malformed);
    }
    Ok(match r.u8().ok_or(Malformed)? {
        0 => Expr::Num(r.u64().ok_or(Malformed)? as i64),
        1 => Expr::Var(raw_name(r)?),
        2 => {
            let op = un_op(r.u8().ok_or(Malformed)?).ok_or(Malformed)?;
            Expr::Unary(op, Box::new(decode_expr(r, depth + 1)?))
        }
        3 => {
            let op = bin_op(r.u8().ok_or(Malformed)?).ok_or(Malformed)?;
            let lhs = Box::new(decode_expr(r, depth + 1)?);
            let rhs = Box::new(decode_expr(r, depth + 1)?);
            Expr::Binary(op, lhs, rhs)
        }
        4 => {
            let f = raw_name(r)?;
            let n_args = r.len(r.remaining()).ok_or(Malformed)?;
            let args = (0..n_args)
                .map(|_| decode_expr(r, depth + 1))
                .collect::<Result<Vec<_>, _>>()?;
            Expr::Call(f, args)
        }
        _ => return Err(Malformed),
    })
}

fn un_op_code(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn un_op(code: u8) -> Option<UnOp> {
    Some(match code {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        _ => return None,
    })
}

fn bin_op_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn bin_op(code: u8) -> Option<BinOp> {
    Some(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        _ => return None,
    })
}

fn raw_name(r: &mut Reader<'_>) -> Result<Name, SnapshotError> {
    let v = r.u32().ok_or(SnapshotError::Malformed)?;
    Ok(Name::from_index(v as usize))
}

fn raw_label(r: &mut Reader<'_>) -> Result<Label, SnapshotError> {
    let v = r.u32().ok_or(SnapshotError::Malformed)?;
    Ok(Label::from_index(v as usize))
}

fn raw_stmt(r: &mut Reader<'_>) -> Result<StmtId, SnapshotError> {
    let v = r.u32().ok_or(SnapshotError::Malformed)?;
    Ok(StmtId::from_index(v as usize))
}

fn raw_stmt_list(r: &mut Reader<'_>) -> Result<Vec<StmtId>, SnapshotError> {
    let len = r.len(r.remaining() / 4).ok_or(SnapshotError::Malformed)?;
    (0..len).map(|_| raw_stmt(r)).collect()
}

fn raw_opt_stmt(r: &mut Reader<'_>) -> Result<SlicePoint, SnapshotError> {
    let v = r.u32().ok_or(SnapshotError::Malformed)?;
    Ok(if v == u32::MAX {
        None
    } else {
        Some(StmtId::from_index(v as usize))
    })
}

// ---- flowgraph section -------------------------------------------------

fn encode_cfg(out: &mut Vec<u8>, cfg: &Cfg) {
    let g = cfg.graph();
    for node in g.nodes() {
        let succs = g.succs(node);
        wire::put_len(out, succs.len());
        for &t in succs {
            wire::put_len(out, t.index());
        }
    }
    for node in g.nodes() {
        match cfg.fallthrough(node) {
            Some(t) => wire::put_len(out, t.index()),
            None => wire::put_u32(out, u32::MAX),
        }
    }
}

fn decode_cfg(r: &mut Reader<'_>, num_stmts: usize) -> Result<Cfg, SnapshotError> {
    use SnapshotError::Malformed;
    let n = num_stmts.checked_add(2).ok_or(Malformed)?;
    // Successors are distinct, so the node count bounds each list; bounds
    // and duplicate checks are `DiGraph::from_succs`'s audit.
    let mut succs = Vec::with_capacity(n);
    for _ in 0..n {
        let n_succ = r.len(n).ok_or(Malformed)?;
        let raw = r
            .bytes(n_succ.checked_mul(4).ok_or(Malformed)?)
            .ok_or(Malformed)?;
        succs.push(
            raw.chunks_exact(4)
                .map(|c| {
                    NodeId::new(u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")) as usize)
                })
                .collect::<Vec<_>>(),
        );
    }
    let graph = DiGraph::from_succs(succs).ok_or(Malformed)?;
    let fallthrough = (0..n)
        .map(|_| {
            let v = r.u32().ok_or(Malformed)?;
            if v == u32::MAX {
                Ok(None)
            } else if (v as usize) < n {
                Ok(Some(NodeId::new(v as usize)))
            } else {
                Err(Malformed)
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Cfg::from_parts(num_stmts, graph, fallthrough).ok_or(Malformed)
}

// ---- artifact sections -------------------------------------------------

fn put_opt_stmt(out: &mut Vec<u8>, s: SlicePoint) {
    match s {
        Some(t) => wire::put_len(out, t.index()),
        None => wire::put_u32(out, u32::MAX),
    }
}

fn opt_stmt(r: &mut Reader<'_>, n: usize) -> Result<SlicePoint, SnapshotError> {
    let v = r.u32().ok_or(SnapshotError::Malformed)?;
    if v == u32::MAX {
        Ok(None)
    } else if (v as usize) < n {
        Ok(Some(StmtId::from_index(v as usize)))
    } else {
        Err(SnapshotError::Malformed)
    }
}

fn stmt_list(r: &mut Reader<'_>, n: usize) -> Result<Vec<StmtId>, SnapshotError> {
    use SnapshotError::Malformed;
    // Dep lists are deduplicated per statement, so `n` bounds their length.
    // Decoded in bulk: the PDG is quadratic in the worst case and its lists
    // dominate the artifact payload, so this is the hot path of a restore.
    let len = r.len(n).ok_or(Malformed)?;
    let raw = r
        .bytes(len.checked_mul(4).ok_or(Malformed)?)
        .ok_or(Malformed)?;
    let mut out = Vec::with_capacity(len);
    for c in raw.chunks_exact(4) {
        let v = u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")) as usize;
        if v >= n {
            return Err(Malformed);
        }
        out.push(StmtId::from_index(v));
    }
    Ok(out)
}

fn encode_reaching(out: &mut Vec<u8>, rd: &ReachingDefs) {
    let vars = rd.vars();
    wire::put_len(out, vars.len());
    for i in 0..vars.len() {
        wire::put_len(out, vars.var(i).index());
    }
    wire::put_len(out, rd.def_sites().len());
    for &d in rd.def_sites() {
        wire::put_len(out, d.index());
    }
    // Every IN set indexes `def_sites`, so one shared capacity implies each
    // set's word count — the sets travel as one contiguous word blob.
    wire::put_len(out, rd.in_sets().len());
    for set in rd.in_sets() {
        assert_eq!(
            set.capacity(),
            rd.def_sites().len(),
            "IN sets index the def-site numbering"
        );
        for &w in set.words() {
            wire::put_u64(out, w);
        }
    }
}

fn decode_reaching(
    r: &mut Reader<'_>,
    prog: &Program,
    cfg: &Cfg,
) -> Result<ReachingDefs, SnapshotError> {
    use SnapshotError::Malformed;
    // Vars travel as raw interner ids — the program section restored the
    // interner, so an id out of its range cannot belong here.
    let n_vars = r.len(r.remaining() / 4).ok_or(Malformed)?;
    let raw_vars = r.bytes(n_vars * 4).ok_or(Malformed)?;
    let mut vars = Vec::with_capacity(n_vars);
    for c in raw_vars.chunks_exact(4) {
        let v = u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")) as usize;
        if v >= prog.num_names() {
            return Err(Malformed);
        }
        vars.push(Name::from_index(v));
    }
    let def_sites = stmt_list(r, prog.len())?;
    let n_sets = r.len(cfg.graph().len()).ok_or(Malformed)?;
    if n_sets != cfg.graph().len() {
        return Err(Malformed);
    }
    let cap = def_sites.len();
    let words_per_set = cap.div_ceil(64);
    let raw = r
        .bytes(n_sets.checked_mul(words_per_set * 8).ok_or(Malformed)?)
        .ok_or(Malformed)?;
    let in_sets = if words_per_set == 0 {
        vec![BitSet::new(0); n_sets]
    } else {
        raw.chunks_exact(words_per_set * 8)
            .map(|chunk| {
                let words = chunk
                    .chunks_exact(8)
                    .map(|w| u64::from_le_bytes(w.try_into().expect("chunks_exact(8)")))
                    .collect();
                BitSet::from_words(cap, words)
            })
            .collect()
    };
    Ok(ReachingDefs::from_parts(
        def_sites,
        in_sets,
        VarTable::from_vars(vars),
    ))
}

fn encode_pdg(out: &mut Vec<u8>, prog: &Program, pdg: &Pdg) {
    wire::put_len(out, prog.len());
    for s in prog.stmt_ids() {
        let d = pdg.data().deps(s);
        wire::put_len(out, d.len());
        for &t in d {
            wire::put_len(out, t.index());
        }
    }
    for s in prog.stmt_ids() {
        let d = pdg.control().deps(s);
        wire::put_len(out, d.len());
        for &t in d {
            wire::put_len(out, t.index());
        }
    }
    let ec = pdg.control().entry_controlled();
    wire::put_len(out, ec.len());
    for &t in ec {
        wire::put_len(out, t.index());
    }
}

fn decode_pdg(r: &mut Reader<'_>, n: usize) -> Result<Pdg, SnapshotError> {
    use SnapshotError::Malformed;
    if r.len(n).ok_or(Malformed)? != n {
        return Err(Malformed);
    }
    let data_deps = (0..n)
        .map(|_| stmt_list(r, n))
        .collect::<Result<Vec<_>, _>>()?;
    let control_deps = (0..n)
        .map(|_| stmt_list(r, n))
        .collect::<Result<Vec<_>, _>>()?;
    let entry_controlled = stmt_list(r, n)?;
    Ok(Pdg::from_parts(
        DataDeps::from_deps(data_deps),
        ControlDeps::from_parts(control_deps, entry_controlled),
    ))
}

fn encode_pdom(out: &mut Vec<u8>, pdom: &DomTree) {
    let n = pdom.num_nodes();
    wire::put_len(out, n);
    wire::put_len(out, pdom.root().index());
    for i in 0..n {
        match pdom.idom(NodeId::new(i)) {
            Some(d) => wire::put_len(out, d.index()),
            None => wire::put_u32(out, u32::MAX),
        }
    }
}

fn decode_pdom(r: &mut Reader<'_>, cfg: &Cfg) -> Result<DomTree, SnapshotError> {
    use SnapshotError::Malformed;
    let n = cfg.graph().len();
    if r.len(n).ok_or(Malformed)? != n {
        return Err(Malformed);
    }
    let root = r.u32().ok_or(Malformed)? as usize;
    // The postdominator tree of this flowgraph is rooted at its exit; any
    // other root is a different graph's tree.
    if root != cfg.exit().index() {
        return Err(Malformed);
    }
    let idom = (0..n)
        .map(|_| {
            let v = r.u32().ok_or(Malformed)?;
            Ok(if v == u32::MAX {
                None
            } else {
                Some(NodeId::new(v as usize))
            })
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    DomTree::from_idom_array(n, cfg.exit(), idom).ok_or(Malformed)
}

fn encode_lst(out: &mut Vec<u8>, lst: &LexSuccTree) {
    let parents = lst.parents();
    wire::put_len(out, parents.len());
    for &p in parents {
        put_opt_stmt(out, p);
    }
}

fn decode_lst(r: &mut Reader<'_>, n: usize) -> Result<LexSuccTree, SnapshotError> {
    if r.len(n).ok_or(SnapshotError::Malformed)? != n {
        return Err(SnapshotError::Malformed);
    }
    let parents = (0..n)
        .map(|_| opt_stmt(r, n))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(LexSuccTree::from_parents(parents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        agrawal_slice, conservative_slice, conventional_slice, structured_slice, Analysis,
        AnalysisStats, Criterion,
    };
    use jumpslice_lang::parse;

    const GOTO_SRC: &str = "positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
goto L3;
L8: positives = positives + 1;
goto L3;
L14: write(positives);";

    const DOWHILE_SRC: &str =
        "read(x); do { x = x + 1; if (c) break; y = 2; } while (x < 10); write(y);";

    const STRUCTURED_SRC: &str = "read(c); while (c) { read(c); } write(c);";

    fn warm_snapshot(src: &str) -> Vec<u8> {
        let prog = parse(src).unwrap();
        let a = Analysis::new(&prog);
        a.warm();
        let seed = a.into_seed();
        encode_snapshot(src, &prog, &seed)
    }

    /// A payload prefix that is valid through the program and flowgraph
    /// sections, for crafting targeted suffixes.
    fn valid_prefix(src: &str) -> Vec<u8> {
        let prog = parse(src).unwrap();
        let cfg = Cfg::build(&prog);
        let mut out = Vec::new();
        wire::put_bytes(&mut out, src.as_bytes());
        encode_program(&mut out, &prog);
        encode_cfg(&mut out, &cfg);
        out
    }

    /// The tentpole's core promise, at codec level: a decoded snapshot
    /// yields the same slices as a fresh analysis for every slicer, and the
    /// restored analysis performs **zero** artifact builds even after
    /// `warm()` — the restart genuinely skips the fixpoints.
    #[test]
    fn round_trip_restores_slices_without_any_rebuild() {
        for (src, line) in [(GOTO_SRC, 8), (DOWHILE_SRC, 7), (STRUCTURED_SRC, 4)] {
            let bytes = warm_snapshot(src);
            let snap = decode_snapshot(&bytes).expect("well-formed snapshot");
            assert_eq!(snap.source, src);
            // The decoded program *is* the parse — ids, interners, labels.
            assert_eq!(snap.prog, parse(src).unwrap(), "{src:?}");

            let restored = Analysis::with_seed(&snap.prog, snap.seed);
            restored.warm();
            assert_eq!(
                restored.stats(),
                AnalysisStats::default(),
                "restored analysis must not recompute anything ({src:?})"
            );

            let fresh_prog = parse(src).unwrap();
            let fresh = Analysis::new(&fresh_prog);
            let crit = Criterion::at_stmt(fresh_prog.at_line(line));
            let rcrit = Criterion::at_stmt(snap.prog.at_line(line));
            assert_eq!(
                agrawal_slice(&restored, &rcrit),
                agrawal_slice(&fresh, &crit)
            );
            assert_eq!(
                conventional_slice(&restored, &rcrit),
                conventional_slice(&fresh, &crit)
            );
            assert_eq!(
                conservative_slice(&restored, &rcrit),
                conservative_slice(&fresh, &crit)
            );
            assert_eq!(
                structured_slice(&restored, &rcrit),
                structured_slice(&fresh, &crit)
            );
        }
    }

    /// Artifacts that were never forced stay absent through the round trip
    /// (the presence bitmap, not padding, carries the schema).
    #[test]
    fn partial_seeds_round_trip_their_presence() {
        let prog = parse(GOTO_SRC).unwrap();
        let a = Analysis::new(&prog);
        let _ = a.reaching(); // force exactly one artifact
        let seed = a.into_seed();
        let bytes = encode_snapshot(GOTO_SRC, &prog, &seed);
        let snap = decode_snapshot(&bytes).unwrap();
        assert!(snap.seed.reaching.is_some());
        assert!(snap.seed.pdg.is_none());
        assert!(snap.seed.pdom.is_none());
        assert!(snap.seed.lst.is_none());
        assert!(snap.seed.chain_index.is_none());
        assert!(snap.seed.cfg.is_some(), "the flowgraph always travels");
    }

    /// Truncation at every prefix length is an error, never a panic — the
    /// store's length framing normally prevents this, but a torn write must
    /// still fail closed here.
    #[test]
    fn truncation_at_every_length_is_rejected() {
        let bytes = warm_snapshot(GOTO_SRC);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_and_unknown_presence_bits_are_rejected() {
        let mut bytes = warm_snapshot(GOTO_SRC);
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes).err(),
            Some(SnapshotError::Malformed)
        );

        let mut crafted = valid_prefix(STRUCTURED_SRC);
        wire::put_u32(&mut crafted, 1 << 31);
        assert_eq!(
            decode_snapshot(&crafted).err(),
            Some(SnapshotError::Malformed)
        );
    }

    #[test]
    fn non_utf8_source_and_garbage_program_sections_are_rejected() {
        // A source that is not UTF-8 text.
        let mut crafted = Vec::new();
        wire::put_bytes(&mut crafted, &[0xFF, 0xFE]);
        wire::put_u32(&mut crafted, 0);
        assert_eq!(
            decode_snapshot(&crafted).err(),
            Some(SnapshotError::BadSource)
        );

        // A valid source followed by bytes that are not a program section.
        let mut crafted = Vec::new();
        wire::put_bytes(&mut crafted, STRUCTURED_SRC.as_bytes());
        crafted.extend_from_slice(&[0xFF; 16]);
        assert_eq!(
            decode_snapshot(&crafted).err(),
            Some(SnapshotError::Malformed)
        );
    }

    /// A tampered program section that stays syntactically decodable must
    /// still fail [`Program::from_parts`]'s structural audit: point the
    /// label map at a statement that never claimed the label.
    #[test]
    fn structurally_lying_program_sections_are_rejected() {
        let src = "L: read(x); if (x) goto L; write(x);";
        let bytes = warm_snapshot(src);
        let prog = decode_snapshot(&bytes)
            .expect("untampered payload decodes")
            .prog;
        let target = prog
            .label_target(Label::from_index(0))
            .expect("fixture's label resolves");

        // Walk the layout to the first label-target entry: source, name
        // strings, label strings, then the target array.
        let mut pos = 4 + src.len() + 4;
        for n in prog.all_names() {
            pos += 4 + prog.name_str(n).len();
        }
        pos += 4;
        for l in prog.all_labels() {
            pos += 4 + prog.label_str(l).len();
        }
        assert_eq!(
            bytes[pos..pos + 4],
            (target.index() as u32).to_le_bytes(),
            "layout walk landed on the label-target entry"
        );
        let mut tampered = bytes.clone();
        tampered[pos..pos + 4].copy_from_slice(&((target.index() as u32) ^ 1).to_le_bytes());
        assert_eq!(
            decode_snapshot(&tampered).err(),
            Some(SnapshotError::Malformed),
            "a lying label map must not survive the audit"
        );
    }

    /// An empty-but-valid suffix (no artifacts) decodes to a bare seed; the
    /// engine then pays the normal lazy builds, no worse than a cache miss.
    #[test]
    fn artifact_free_snapshot_is_valid() {
        let mut crafted = valid_prefix(STRUCTURED_SRC);
        wire::put_u32(&mut crafted, 0);
        let snap = decode_snapshot(&crafted).unwrap();
        assert_eq!(snap.seed.reused_phases(), 0);
        let a = Analysis::with_seed(&snap.prog, snap.seed);
        let crit = Criterion::at_stmt(snap.prog.at_line(4));
        assert!(!agrawal_slice(&a, &crit).stmts.is_empty());
    }
}
