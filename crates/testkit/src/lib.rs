//! Dependency-free randomness and property-testing support.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `rand` or `proptest` from a registry. This crate supplies the two pieces
//! those crates were used for:
//!
//! * [`Rng`] — a small, fast, seeded PRNG (SplitMix64) with the
//!   `gen_range`/`gen_bool`/`gen_f64` surface the generators and tests
//!   need. Determinism is part of the contract: equal seeds produce equal
//!   streams, forever, on every platform.
//! * [`check`] — a minimal property-test driver: run a closure over many
//!   derived seeds and report the failing case so it can be replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A seeded SplitMix64 generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period over its state, and
/// is two arithmetic operations per output — more than enough statistical
/// quality for program generation and property tests, with no dependency.
///
/// # Examples
///
/// ```
/// use jumpslice_testkit::Rng;
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let d6 = a.gen_range(1..7usize);
/// assert!((1..7).contains(&d6));
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in a half-open range. Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` below `n` via the widening-multiply trick
    /// (bias < 2^-64; irrelevant at test scale).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Types of half-open ranges [`Rng::gen_range`] can sample from.
///
/// `T` is a type parameter (not an associated type) so that usage context —
/// say, indexing a slice — can pin the scalar type and back-propagate it to
/// an untyped range literal, exactly as `rand`'s `SampleRange` does.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, i64, i32);

/// Runs `property` once per case with a fresh deterministically-seeded
/// [`Rng`], re-panicking with the failing case number so the run can be
/// replayed with `Rng::seed_from_u64(case)`.
///
/// This replaces `proptest!` blocks: no shrinking, but fully offline,
/// deterministic, and the original panic message still reaches stderr via
/// the default panic hook.
///
/// # Examples
///
/// ```
/// use jumpslice_testkit::check;
/// check(16, |rng| {
///     let n = rng.gen_range(0..100usize);
///     assert!(n < 100);
/// });
/// ```
pub fn check(cases: u64, property: impl Fn(&mut Rng)) {
    for case in 0..cases {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Scramble the raw case index so consecutive cases start in
            // unrelated regions of the state space.
            let mut rng = Rng::seed_from_u64(case.wrapping_mul(0x2545_F491_4F6C_DD1D));
            property(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property failed at case {case}/{cases} (see panic above for details)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4..5i64);
            assert!((-4..5).contains(&w));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_singleton_range() {
        let mut rng = Rng::seed_from_u64(5);
        assert_eq!(rng.gen_range(4..5usize), 4);
        assert_eq!(rng.gen_range(-1..0i64), -1);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(5);
        let _ = rng.gen_range(5..5usize);
    }
}
