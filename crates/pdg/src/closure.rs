//! SCC-condensed transitive-closure engine over the PDG.
//!
//! Every slicer in the workspace bottoms out in `backward_closure` /
//! `forward_closure` walks over the dependence edges. Those walks are
//! O(edges) *per criterion*; a 120-criterion batch sweep re-traverses the
//! same edges 120 times. This module condenses the PDG once with
//! [`tarjan_scc`], precomputes the full reachability set of every strongly
//! connected component as a dense [`StmtSet`] (word-parallel unions in
//! reverse-topological order), and then answers any closure query as a
//! component lookup plus a bitset union — O(components × words) shared work
//! up front, O(seeds × words) per query after.
//!
//! # Equivalence contract
//!
//! For a query over `seeds` into an **empty** target set, the condensed
//! answer is exactly the direct walk's answer: the transitive closure of
//! data ∪ control dependence from the seeds (seeds included).
//!
//! For the layered forms (`*_into`, `*_delta`) the direct walk treats
//! statements already in the target as visited marks — it never explores
//! *their* dependences. The condensed engine instead unions the seeds' full
//! closures into the target. The two agree exactly when the pre-existing
//! target is already **closed under dependence**, which holds at every call
//! site the workspace routes here: the Figure-7 fixpoint only ever layers
//! admission closures onto a slice that is a union of closures (see the
//! invariant note in `core/src/agrawal.rs`). Callers layering onto a
//! non-closed set must use the direct walk.
//!
//! Delta order: the direct walk reports newly inserted statements in DFS
//! pop order; the condensed engine reports them in ascending statement
//! order. The sparse Figure-7 kernel consumes deltas only through set
//! unions and net-insertion counts, so the resulting slices, traversal
//! counts, and moved labels are bit-identical (`difftest --mode closure`
//! pins this over random corpora and edit states).

use crate::Pdg;
use jumpslice_dataflow::StmtSet;
use jumpslice_graph::{tarjan_scc, DiGraph, NodeId};
use jumpslice_lang::StmtId;
use jumpslice_obs as obs;

/// Precomputed per-component reachability over a PDG's dependence edges.
///
/// Immutable once built; queries take `&self`, so a single index can be
/// shared across batch worker threads exactly like the PDG itself.
#[derive(Clone, Debug)]
pub struct ClosureIndex {
    /// Statement index → component id (Tarjan emission order: a
    /// component's dependence successors all have *smaller* ids).
    comp_of: Vec<u32>,
    /// Per component: the full backward closure (the component's members
    /// plus everything they transitively depend on).
    backward: Vec<StmtSet>,
    /// Per component: the full forward closure (members plus everything
    /// transitively dependent on them).
    forward: Vec<StmtSet>,
    /// Dense statement-id bound (capacity of every set above).
    num_stmts: usize,
}

/// Merges two sorted, deduplicated id lists into one (sorted, deduplicated).
fn merge_sorted(a: &[StmtId], b: &[StmtId], out: &mut Vec<NodeId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let next = match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                a[i - 1]
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                b[j - 1]
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                a[i - 1]
            }
        };
        out.push(NodeId::new(next.index()));
    }
    out.extend(a[i..].iter().map(|s| NodeId::new(s.index())));
    out.extend(b[j..].iter().map(|s| NodeId::new(s.index())));
}

impl ClosureIndex {
    /// Condenses `pdg` and precomputes both reachability directions.
    ///
    /// Emits a [`Phase::ClosureIndexBuild`](obs::Phase::ClosureIndexBuild)
    /// timer and a `closure.condensed.components` count on the caller's
    /// trace sink.
    pub fn build(pdg: &Pdg) -> ClosureIndex {
        let _t = obs::phase(obs::Phase::ClosureIndexBuild);
        let n = pdg.control().num_stmts();

        // The dependence graph: statement u → each statement it directly
        // depends on (data then control, merged). Both inputs are sorted,
        // so a linear merge keeps `from_succs`'s no-duplicates contract.
        let mut succs: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        let mut merged = Vec::new();
        for u in 0..n {
            let s = StmtId::from_index(u);
            merge_sorted(pdg.data().deps(s), pdg.control().deps(s), &mut merged);
            succs.push(merged.clone());
        }
        let g = DiGraph::from_succs(succs).expect("merged dependence lists are duplicate-free");

        // Tarjan emits components in reverse topological order: everything
        // a component can reach (its dependence successors) is emitted
        // before it.
        let sccs = tarjan_scc(&g);
        let k = sccs.len();
        let mut comp_of = vec![0u32; n];
        for (c, members) in sccs.iter().enumerate() {
            for &m in members {
                comp_of[m.index()] = c as u32;
            }
        }

        // Unique successor components (dependencies) per component; by the
        // emission order these all have smaller ids than the component.
        let mut succ_comps: Vec<Vec<u32>> = vec![Vec::new(); k];
        // And the transpose: predecessor components, all with larger ids.
        let mut pred_comps: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (c, members) in sccs.iter().enumerate() {
            let cs = &mut succ_comps[c];
            for &m in members {
                for &d in g.succs(m) {
                    let dc = comp_of[d.index()];
                    if dc as usize != c {
                        cs.push(dc);
                    }
                }
            }
            cs.sort_unstable();
            cs.dedup();
            for &dc in cs.iter() {
                pred_comps[dc as usize].push(c as u32);
            }
        }

        // Backward reachability, in emission order: a component's closure
        // is its members plus the (already-final) closures of its
        // dependence successors. Equal capacities keep every union on the
        // word-parallel path.
        let mut backward: Vec<StmtSet> = Vec::with_capacity(k);
        for (c, members) in sccs.iter().enumerate() {
            let mut set = StmtSet::with_capacity(n);
            for &m in members {
                set.insert(StmtId::from_index(m.index()));
            }
            for &dc in &succ_comps[c] {
                set.union_with(&backward[dc as usize]);
            }
            backward.push(set);
        }

        // Forward reachability, in reversed emission (= topological) order:
        // a component's forward set is its members plus the forward sets of
        // its predecessor components, all of which have larger ids and are
        // already final.
        let mut forward: Vec<StmtSet> = (0..k).map(|_| StmtSet::with_capacity(n)).collect();
        for (c, members) in sccs.iter().enumerate().rev() {
            let (head, tail) = forward.split_at_mut(c + 1);
            let set = &mut head[c];
            for &m in members {
                set.insert(StmtId::from_index(m.index()));
            }
            for &pc in &pred_comps[c] {
                set.union_with(&tail[pc as usize - c - 1]);
            }
        }

        obs::record(|| obs::Event::Count {
            name: "closure.condensed.components",
            value: k as u64,
        });
        ClosureIndex {
            comp_of,
            backward,
            forward,
            num_stmts: n,
        }
    }

    /// Number of strongly connected components in the dependence graph.
    pub fn num_components(&self) -> usize {
        self.backward.len()
    }

    /// Dense statement-id bound the index was built for.
    pub fn num_stmts(&self) -> usize {
        self.num_stmts
    }

    /// The full backward closure of one statement (shared, read-only).
    pub fn backward_of(&self, s: StmtId) -> &StmtSet {
        &self.backward[self.comp_of[s.index()] as usize]
    }

    /// The full forward closure of one statement (shared, read-only).
    pub fn forward_of(&self, s: StmtId) -> &StmtSet {
        &self.forward[self.comp_of[s.index()] as usize]
    }

    /// The transitive backward closure of `seeds` — equals
    /// [`Pdg::backward_closure`] exactly.
    pub fn backward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        let mut slice = StmtSet::with_capacity(self.num_stmts);
        self.backward_closure_into(seeds, &mut slice);
        slice
    }

    /// Unions the backward closures of `seeds` into `slice` (not cleared).
    ///
    /// Equals [`Pdg::backward_closure_into`] when `slice` is empty or
    /// closed under dependence (see the module docs).
    pub fn backward_closure_into(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
    ) {
        for s in seeds {
            slice.union_with(self.backward_of(s));
        }
    }

    /// [`ClosureIndex::backward_closure_into`] additionally appending every
    /// newly inserted statement to `delta` (not cleared), in ascending
    /// statement order.
    pub fn backward_closure_delta(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
        delta: &mut Vec<StmtId>,
    ) {
        for s in seeds {
            let b = self.backward_of(s);
            push_new_bits(b, slice, delta);
            slice.union_with(b);
        }
    }

    /// The transitive forward closure of `seeds` — equals
    /// [`Pdg::forward_closure`] exactly.
    pub fn forward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        let mut slice = StmtSet::with_capacity(self.num_stmts);
        for s in seeds {
            slice.union_with(self.forward_of(s));
        }
        slice
    }
}

/// Appends the statements of `set \ target` to `delta`, ascending.
fn push_new_bits(set: &StmtSet, target: &StmtSet, delta: &mut Vec<StmtId>) {
    let tw = target.words();
    for (w, &bword) in set.words().iter().enumerate() {
        let mut new = bword & !tw.get(w).copied().unwrap_or(0);
        while new != 0 {
            let b = new.trailing_zeros() as usize;
            delta.push(StmtId::from_index(w * 64 + b));
            new &= new - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_cfg::Cfg;
    use jumpslice_lang::parse;

    fn index_of(src: &str) -> (jumpslice_lang::Program, Pdg) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        (p, pdg)
    }

    #[test]
    fn condensed_matches_direct_on_every_seed() {
        let srcs = [
            "read(c); if (c) { x = 1; } else { x = 2; } write(x);",
            "read(c); while (c) { read(c); if (c) break; y = c; } write(y);",
            "sum = 0; L3: if (eof()) goto L14; read(x); sum = sum + x; goto L3; L14: write(sum);",
            "do { read(x); if (x) continue; x = 1; } while (!eof()); write(x);",
        ];
        for src in srcs {
            let (p, pdg) = index_of(src);
            let idx = ClosureIndex::build(&pdg);
            for s in p.stmt_ids() {
                assert_eq!(
                    idx.backward_closure([s]),
                    pdg.backward_closure([s]),
                    "backward at line {} of {src:?}",
                    p.line_of(s)
                );
                assert_eq!(
                    idx.forward_closure([s]),
                    pdg.forward_closure([s]),
                    "forward at line {} of {src:?}",
                    p.line_of(s)
                );
            }
        }
    }

    #[test]
    fn multi_seed_union_matches_direct() {
        let (p, pdg) = index_of("read(a); read(b); x = a; y = b; write(x); write(y);");
        let idx = ClosureIndex::build(&pdg);
        let seeds = [p.at_line(5), p.at_line(6)];
        assert_eq!(idx.backward_closure(seeds), pdg.backward_closure(seeds));
    }

    #[test]
    fn layered_union_onto_a_closed_set_matches_direct() {
        let (p, pdg) = index_of("read(c); while (c) { read(x); y = x; } write(y); write(c);");
        let idx = ClosureIndex::build(&pdg);
        // A dependence-closed base: the closure of write(c).
        let base = pdg.backward_closure([p.at_line(6)]);
        let mut direct = base.clone();
        pdg.backward_closure_into([p.at_line(5)], &mut direct);
        let mut condensed = base.clone();
        idx.backward_closure_into([p.at_line(5)], &mut condensed);
        assert_eq!(condensed, direct);
    }

    #[test]
    fn delta_reports_exactly_the_new_statements_ascending() {
        let (p, pdg) = index_of("read(c); while (c) { read(x); y = x; } write(y); write(c);");
        let idx = ClosureIndex::build(&pdg);
        let mut slice = pdg.backward_closure([p.at_line(6)]);
        let before = slice.clone();
        let mut delta = Vec::new();
        idx.backward_closure_delta([p.at_line(5)], &mut slice, &mut delta);
        assert_eq!(slice, pdg.backward_closure([p.at_line(5), p.at_line(6)]));
        for w in delta.windows(2) {
            assert!(w[0] < w[1], "delta ascending and duplicate-free");
        }
        let delta_set: StmtSet = delta.iter().copied().collect();
        for s in p.stmt_ids() {
            assert_eq!(
                delta_set.contains(s),
                slice.contains(s) && !before.contains(s),
                "delta == newly inserted, at line {}",
                p.line_of(s)
            );
        }
    }

    #[test]
    fn cyclic_dependences_share_one_component() {
        // The while predicate is control dependent on itself; loop-carried
        // data dependences put the body in a cycle with it.
        let (p, pdg) = index_of("read(n); i = 0; while (i < n) { i = i + 1; } write(i);");
        let idx = ClosureIndex::build(&pdg);
        assert!(idx.num_components() < p.len() + 1 || idx.num_components() <= p.len());
        let s = p.at_line(5);
        assert_eq!(idx.backward_closure([s]), pdg.backward_closure([s]));
    }

    #[test]
    fn build_emits_phase_and_component_count() {
        let (_, pdg) = index_of("read(a); write(a);");
        let (idx, trace) = jumpslice_obs::capture(|| ClosureIndex::build(&pdg));
        let m = jumpslice_obs::Metrics::of(&trace);
        assert_eq!(m.phase_count.get("closure_index_build"), Some(&1));
        assert_eq!(
            m.counts.get("closure.condensed.components"),
            Some(&(idx.num_components() as u64))
        );
    }
}
