//! Control dependence and program dependence graphs.
//!
//! Control dependence is computed with the Ferrante–Ottenstein–Warren
//! construction the paper cites (\[10\]): for every flowgraph edge `A -> B`
//! where `B` does not postdominate `A`, every node on the postdominator-tree
//! path from `B` up to (but excluding) `ipdom(A)` is control dependent on
//! `A`. Thanks to the always-present `Entry -> Exit` edge, top-level
//! statements come out control dependent on `Entry` — the paper's dummy
//! predicate "node 0".
//!
//! The same construction run over the [augmented
//! flowgraph](jumpslice_cfg::Cfg::augmented_graph) yields the control
//! dependences Ball–Horwitz and Choi–Ferrante use; [`Pdg::build_augmented`]
//! packages that baseline (data dependence stays on the unaugmented graph,
//! exactly as both papers require).
//!
//! # Examples
//!
//! ```
//! use jumpslice_lang::parse;
//! use jumpslice_cfg::Cfg;
//! use jumpslice_pdg::Pdg;
//!
//! let p = parse("read(c); if (c) { x = 1; } write(x);")?;
//! let cfg = Cfg::build(&p);
//! let pdg = Pdg::build(&p, &cfg);
//! // x = 1 is control dependent on the if.
//! assert_eq!(pdg.control().deps(p.at_line(3)), &[p.at_line(2)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use jumpslice_cfg::Cfg;
use jumpslice_dataflow::{DataDeps, ReachingDefs, StmtSet};
use jumpslice_graph::{DiGraph, DomTree, NodeId};
use jumpslice_lang::{Program, StmtId};

pub mod closure;

pub use closure::ClosureIndex;

/// Control-dependence edges between statements.
#[derive(Clone, Debug)]
pub struct ControlDeps {
    /// Per statement: the predicates it is directly control dependent on.
    deps: Vec<Vec<StmtId>>,
    /// Per statement: the statements directly control dependent on it.
    dependents: Vec<Vec<StmtId>>,
    /// Statements control dependent on `Entry` (the paper's node 0): the
    /// top-level statements.
    entry_controlled: Vec<StmtId>,
}

impl ControlDeps {
    /// Computes control dependence from the standard flowgraph.
    pub fn compute(prog: &Program, cfg: &Cfg) -> ControlDeps {
        Self::compute_from_graph(prog, cfg, cfg.graph())
    }

    /// Computes control dependence from an alternative flowgraph sharing the
    /// node layout of `cfg` — in practice the Ball–Horwitz augmented graph.
    ///
    /// Edges whose source is unreachable from the entry (dead code) are
    /// ignored: a statement cannot be controlled by a predicate that never
    /// executes. Reachability is judged in the *given* graph, so under the
    /// augmented graph statements reachable only through pseudo fall-through
    /// edges still participate, as Ball–Horwitz require.
    pub fn compute_from_graph(prog: &Program, cfg: &Cfg, graph: &DiGraph) -> ControlDeps {
        let pdom = DomTree::iterative(&graph.reversed(), cfg.exit());
        Self::from_graph_and_pdom(prog, cfg, graph, &pdom)
    }

    /// Computes control dependence over the standard flowgraph reusing an
    /// already-built postdominator tree (which must be
    /// [`Cfg::postdominators`] of `cfg`). The incremental session uses this
    /// to build the tree once and share it between control dependence and
    /// the analysis cache.
    pub fn compute_with_pdom(prog: &Program, cfg: &Cfg, pdom: &DomTree) -> ControlDeps {
        Self::from_graph_and_pdom(prog, cfg, cfg.graph(), pdom)
    }

    fn from_graph_and_pdom(
        prog: &Program,
        cfg: &Cfg,
        graph: &DiGraph,
        pdom: &DomTree,
    ) -> ControlDeps {
        let live = jumpslice_graph::reachable_from(graph, cfg.entry());
        let mut deps = vec![Vec::new(); prog.len()];
        let mut dependents = vec![Vec::new(); prog.len()];
        let mut entry_controlled = Vec::new();

        // Per-source stamps over flowgraph nodes: `visited[r] == stamp(a)`
        // means the pdom-tree path from `r` upward has already been claimed
        // for source `a`. This replaces the old `Vec::contains` scans
        // (quadratic on high-fanout predicates) with O(1) dedup *and* lets
        // each walk stop as soon as it rejoins an earlier walk from the
        // same source, since the remainder of the path is identical.
        let mut visited = vec![usize::MAX; graph.len()];
        for a in graph.nodes() {
            if !live[a.index()] || !pdom.is_reachable(a) {
                continue;
            }
            let stop = pdom.idom(a);
            let stamp = a.index();
            for &b in graph.succs(a) {
                if !pdom.is_reachable(b) {
                    continue;
                }
                // Walk the postdominator tree from b up to (excluding)
                // ipdom(a), or until rejoining a stamped path.
                let mut runner = Some(b);
                while let Some(r) = runner {
                    if Some(r) == stop || visited[r.index()] == stamp {
                        break;
                    }
                    visited[r.index()] = stamp;
                    if let Some(target) = cfg.stmt(r) {
                        match cfg.stmt(a) {
                            Some(src) => {
                                deps[target.index()].push(src);
                                dependents[src.index()].push(target);
                            }
                            None if a == cfg.entry() => entry_controlled.push(target),
                            None => {}
                        }
                    }
                    runner = pdom.idom(r);
                }
            }
        }

        for v in deps.iter_mut().chain(dependents.iter_mut()) {
            v.sort();
            v.dedup();
        }
        entry_controlled.sort();
        ControlDeps {
            deps,
            dependents,
            entry_controlled,
        }
    }

    /// Computes control dependence through *postdominance frontiers*
    /// instead of the edge walk: `b` is control dependent on `a` exactly
    /// when `a` lies in `b`'s dominance frontier over the reverse graph.
    ///
    /// An independent construction kept for cross-checking
    /// [`ControlDeps::compute_from_graph`] (the property tests assert the
    /// two agree on random programs) and for the ablation bench.
    pub fn compute_via_frontiers(prog: &Program, cfg: &Cfg) -> ControlDeps {
        let graph = cfg.graph();
        let rev = graph.reversed();
        let pdom = DomTree::iterative(&rev, cfg.exit());
        let frontiers = jumpslice_graph::dominance_frontiers(&rev, &pdom);
        let live = jumpslice_graph::reachable_from(graph, cfg.entry());

        let mut deps = vec![Vec::new(); prog.len()];
        let mut dependents = vec![Vec::new(); prog.len()];
        let mut entry_controlled = Vec::new();
        for b in graph.nodes() {
            let Some(target) = cfg.stmt(b) else { continue };
            for &a in &frontiers[b.index()] {
                if !live[a.index()] {
                    continue;
                }
                match cfg.stmt(a) {
                    Some(src) => {
                        deps[target.index()].push(src);
                        dependents[src.index()].push(target);
                    }
                    None if a == cfg.entry() => entry_controlled.push(target),
                    None => {}
                }
            }
        }
        for v in deps.iter_mut().chain(dependents.iter_mut()) {
            v.sort();
            v.dedup();
        }
        entry_controlled.sort();
        entry_controlled.dedup();
        ControlDeps {
            deps,
            dependents,
            entry_controlled,
        }
    }

    /// Rebuilds the edge set from the forward direction plus the entry
    /// list, deriving the inverse index — the snapshot-restore constructor.
    /// `deps[i]` lists the predicates statement `i` is directly control
    /// dependent on; lists are sorted and deduplicated here, so wire forms
    /// need not be trusted.
    pub fn from_parts(
        mut deps: Vec<Vec<StmtId>>,
        mut entry_controlled: Vec<StmtId>,
    ) -> ControlDeps {
        let n = deps.len();
        let mut counts = vec![0usize; n];
        for v in deps.iter_mut() {
            // Our own wire forms arrive strictly sorted; one ordering scan
            // keeps the sort off the restore path for all but hostile bytes.
            if !v.windows(2).all(|w| w[0] < w[1]) {
                v.sort();
                v.dedup();
            }
            for p in v.iter() {
                counts[p.index()] += 1;
            }
        }
        // Filling in ascending `t` over deduplicated forward lists leaves
        // every reverse list strictly sorted — no post-pass needed.
        let mut dependents: Vec<Vec<StmtId>> =
            counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (t, ps) in deps.iter().enumerate() {
            for &p in ps {
                dependents[p.index()].push(StmtId::from_index(t));
            }
        }
        if !entry_controlled.windows(2).all(|w| w[0] < w[1]) {
            entry_controlled.sort();
            entry_controlled.dedup();
        }
        ControlDeps {
            deps,
            dependents,
            entry_controlled,
        }
    }

    /// The predicates `s` is directly control dependent on (sorted;
    /// excluding `Entry`).
    pub fn deps(&self, s: StmtId) -> &[StmtId] {
        &self.deps[s.index()]
    }

    /// The statements directly control dependent on `s` (sorted).
    pub fn dependents(&self, s: StmtId) -> &[StmtId] {
        &self.dependents[s.index()]
    }

    /// Statements control dependent on `Entry` (paper's node 0).
    pub fn entry_controlled(&self) -> &[StmtId] {
        &self.entry_controlled
    }

    /// All edges as `(predicate, dependent)` pairs, excluding `Entry` edges.
    pub fn edges(&self) -> impl Iterator<Item = (StmtId, StmtId)> + '_ {
        self.deps
            .iter()
            .enumerate()
            .flat_map(|(t, ps)| ps.iter().map(move |&p| (p, StmtId::from_index(t))))
    }

    /// Number of statements in the underlying program (the dense id bound).
    pub fn num_stmts(&self) -> usize {
        self.deps.len()
    }
}

/// A program dependence graph: data plus control dependence.
#[derive(Clone, Debug)]
pub struct Pdg {
    data: DataDeps,
    control: ControlDeps,
}

impl Pdg {
    /// Builds the standard PDG: control and data dependence both from the
    /// unaugmented flowgraph (paper, §2).
    pub fn build(prog: &Program, cfg: &Cfg) -> Pdg {
        Pdg::from_parts(
            DataDeps::compute(prog, cfg),
            ControlDeps::compute(prog, cfg),
        )
    }

    /// Builds the *augmented* PDG used by the Ball–Horwitz / Choi–Ferrante
    /// baseline: control dependence from the augmented flowgraph, data
    /// dependence from the standard one (paper, §5).
    pub fn build_augmented(prog: &Program, cfg: &Cfg) -> Pdg {
        let aug = cfg.augmented_graph();
        Pdg::from_parts(
            DataDeps::compute(prog, cfg),
            ControlDeps::compute_from_graph(prog, cfg, &aug),
        )
    }

    /// Assembles a PDG from already-computed halves.
    ///
    /// The batch engine caches `ReachingDefs` per program and derives data
    /// dependence once via [`DataDeps::from_reaching`]; this constructor
    /// lets it share that work instead of recomputing it per build.
    pub fn from_parts(data: DataDeps, control: ControlDeps) -> Pdg {
        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "pdg.data_edges",
            value: data.num_edges() as u64,
        });
        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "pdg.control_edges",
            value: control.edges().count() as u64,
        });
        Pdg { data, control }
    }

    /// The data-dependence half.
    pub fn data(&self) -> &DataDeps {
        &self.data
    }

    /// Patches the data half in place after an edit that changed only the
    /// *uses* of statement `u` (an expression replacement under an
    /// unchanged flowgraph shape): recomputes `u`'s incoming data edges
    /// from `rd` and leaves every control edge and every other statement's
    /// data edges untouched. Returns the number of data edges now entering
    /// `u`.
    pub fn repoint_data_uses(
        &mut self,
        prog: &Program,
        cfg: &Cfg,
        rd: &ReachingDefs,
        u: StmtId,
    ) -> usize {
        let n = self.data.repoint_uses(prog, cfg, rd, u);
        jumpslice_obs::record(|| jumpslice_obs::Event::Count {
            name: "pdg.patched_data_edges",
            value: n as u64,
        });
        n
    }

    /// The control-dependence half.
    pub fn control(&self) -> &ControlDeps {
        &self.control
    }

    /// Direct dependences of `s`: data then control, deduplicated.
    pub fn deps(&self, s: StmtId) -> Vec<StmtId> {
        let mut out: Vec<StmtId> = self.data.deps(s).to_vec();
        for &c in self.control.deps(s) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// The transitive closure of data and control dependence from `seeds` —
    /// the conventional slicing kernel (paper, §2). The dense [`StmtSet`]
    /// iterates in ascending id order, so downstream consumers see the same
    /// sorted view the old `BTreeSet` gave them.
    pub fn backward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        let mut slice = StmtSet::with_capacity(self.control.num_stmts());
        self.backward_closure_into(seeds, &mut slice);
        slice
    }

    /// [`Pdg::backward_closure`] accumulating into a caller-provided set —
    /// the allocation-free form the batch engine uses with per-thread
    /// scratch sets. `slice` is *not* cleared: statements already present
    /// act as visited marks, so closures can be layered.
    pub fn backward_closure_into(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
    ) {
        let mut work = Vec::new();
        self.backward_closure_into_with_scratch(seeds, slice, &mut work);
    }

    /// [`Pdg::backward_closure_into`] reusing a caller-provided work vector,
    /// so hot loops that run one closure per jump admission (the Figure-7
    /// fixpoint, the batch engine's workers) stop allocating a fresh
    /// `Vec` each time. `work` is cleared on entry; its contents on return
    /// are unspecified.
    pub fn backward_closure_into_with_scratch(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
        work: &mut Vec<StmtId>,
    ) {
        work.clear();
        work.extend(seeds);
        while let Some(s) = work.pop() {
            if !slice.insert(s) {
                continue;
            }
            work.extend(self.data.deps(s).iter().copied());
            work.extend(self.control.deps(s).iter().copied());
        }
    }

    /// [`Pdg::backward_closure_into_with_scratch`] that additionally appends
    /// every *newly inserted* statement to `delta` (which is **not**
    /// cleared). The sparse Figure-7 kernel feeds the delta to its dirty-jump
    /// index so only tests whose inputs changed are re-run.
    pub fn backward_closure_delta(
        &self,
        seeds: impl IntoIterator<Item = StmtId>,
        slice: &mut StmtSet,
        work: &mut Vec<StmtId>,
        delta: &mut Vec<StmtId>,
    ) {
        work.clear();
        work.extend(seeds);
        while let Some(s) = work.pop() {
            if !slice.insert(s) {
                continue;
            }
            delta.push(s);
            work.extend(self.data.deps(s).iter().copied());
            work.extend(self.control.deps(s).iter().copied());
        }
    }

    /// Forward closure: everything affected by `seeds` (used by the
    /// forward-slicing example).
    pub fn forward_closure(&self, seeds: impl IntoIterator<Item = StmtId>) -> StmtSet {
        let mut slice = StmtSet::with_capacity(self.control.num_stmts());
        let mut work: Vec<StmtId> = seeds.into_iter().collect();
        while let Some(s) = work.pop() {
            if !slice.insert(s) {
                continue;
            }
            work.extend(self.data.dependents(s).iter().copied());
            work.extend(self.control.dependents(s).iter().copied());
        }
        slice
    }
}

/// Renders a PDG in Graphviz `dot` syntax; solid edges are control, dashed
/// are data, matching the usual PDG figure conventions.
pub fn pdg_dot(pdg: &Pdg, prog: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph pdg {\n  entry [label=\"0\"];\n");
    for s in prog.stmt_ids() {
        let _ = writeln!(out, "  s{} [label=\"{}\"];", s.index(), prog.line_of(s));
    }
    for &t in pdg.control().entry_controlled() {
        let _ = writeln!(out, "  entry -> s{};", t.index());
    }
    for (p, t) in pdg.control().edges() {
        let _ = writeln!(out, "  s{} -> s{};", p.index(), t.index());
    }
    for (d, u) in pdg.data().edges() {
        let _ = writeln!(out, "  s{} -> s{} [style=dashed];", d.index(), u.index());
    }
    out.push_str("}\n");
    out
}

/// Convenience: the control-dependence walk needs postdominators of an
/// arbitrary graph sharing `cfg`'s layout; re-exported for the figure
/// harness.
pub fn postdominators_of(graph: &DiGraph, exit: NodeId) -> DomTree {
    DomTree::iterative(&graph.reversed(), exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jumpslice_lang::parse;

    fn cd_of(src: &str, line: usize) -> Vec<usize> {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let cd = ControlDeps::compute(&p, &cfg);
        cd.deps(p.at_line(line))
            .iter()
            .map(|&s| p.line_of(s))
            .collect()
    }

    #[test]
    fn if_branches_depend_on_predicate() {
        let src = "read(c); if (c) { x = 1; } else { x = 2; } write(x);";
        assert_eq!(cd_of(src, 3), vec![2]);
        assert_eq!(cd_of(src, 4), vec![2]);
        assert_eq!(cd_of(src, 2), Vec::<usize>::new());
        assert_eq!(cd_of(src, 5), Vec::<usize>::new());
    }

    #[test]
    fn while_body_and_self_dependence() {
        let src = "read(c); while (c) { x = 1; } write(x);";
        assert_eq!(cd_of(src, 3), vec![2]);
        // FOW: a loop predicate is control dependent on itself.
        assert_eq!(cd_of(src, 2), vec![2]);
    }

    #[test]
    fn entry_controls_top_level() {
        let p = parse("a = 1; if (a) { b = 2; } c = 3;").unwrap();
        let cfg = Cfg::build(&p);
        let cd = ControlDeps::compute(&p, &cfg);
        let top: Vec<usize> = cd
            .entry_controlled()
            .iter()
            .map(|&s| p.line_of(s))
            .collect();
        assert_eq!(top, vec![1, 2, 4]);
    }

    #[test]
    fn nested_control_dependence_is_direct_only() {
        let src = "read(a); read(b); if (a) { if (b) { x = 1; } } write(x);";
        assert_eq!(cd_of(src, 4), vec![3], "inner if depends on outer if");
        assert_eq!(cd_of(src, 5), vec![4], "x = 1 depends only on inner if");
        assert_eq!(cd_of(src, 3), Vec::<usize>::new(), "outer if is top-level");
    }

    #[test]
    fn paper_figure_2c_control_dependence() {
        // Figure 1-a / 2-c.
        let src = "sum = 0;
                   positives = 0;
                   while (!eof()) {
                     read(x);
                     if (x <= 0)
                       sum = sum + f1(x);
                     else {
                       positives = positives + 1;
                       if (x % 2 == 0)
                         sum = sum + f2(x);
                       else
                         sum = sum + f3(x);
                     }
                   }
                   write(sum);
                   write(positives);";
        // 4 and 5 are control dependent on the while (3); 6 and 7 on the if
        // (5); 9 and 10 on the if (8).
        assert_eq!(cd_of(src, 4), vec![3]);
        assert_eq!(cd_of(src, 5), vec![3]);
        assert_eq!(cd_of(src, 6), vec![5]);
        assert_eq!(cd_of(src, 7), vec![5]);
        assert_eq!(cd_of(src, 8), vec![5]);
        assert_eq!(cd_of(src, 9), vec![8]);
        assert_eq!(cd_of(src, 10), vec![8]);
        // Top level: 1, 2, 3, 11, 12.
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let cd = ControlDeps::compute(&p, &cfg);
        let top: Vec<usize> = cd
            .entry_controlled()
            .iter()
            .map(|&s| p.line_of(s))
            .collect();
        assert_eq!(top, vec![1, 2, 3, 11, 12]);
    }

    #[test]
    fn goto_program_control_dependence() {
        // Figure 3-a shape: statements guarded by conditional gotos.
        let src = "sum = 0;
                   positives = 0;
                   L3: if (eof()) goto L14;
                   read(x);
                   if (x > 0) goto L8;
                   sum = sum + f1(x);
                   goto L13;
                   L8: positives = positives + 1;
                   if (x % 2 != 0) goto L12;
                   sum = sum + f2(x);
                   goto L13;
                   L12: sum = sum + f3(x);
                   L13: goto L3;
                   L14: write(sum);
                   write(positives);";
        // read(x) is control dependent on the conditional goto at 3.
        assert_eq!(cd_of(src, 4), vec![3]);
        // positives += 1 at 8 is control dependent on line 5.
        assert_eq!(cd_of(src, 8), vec![5]);
        // Lines 10 (sum=f2) is control dependent on 9.
        assert_eq!(cd_of(src, 10), vec![9]);
    }

    #[test]
    fn augmented_pdg_includes_jumps_as_predicates() {
        // In the augmented graph, an unconditional goto gains a second
        // (pseudo) edge, so statements can be control dependent on it.
        let src = "read(x);
                   if (x > 0) goto L8;
                   sum = 1;
                   goto L13;
                   L8: positives = 1;
                   L13: write(positives);";
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let aug = Pdg::build_augmented(&p, &cfg);
        let std = Pdg::build(&p, &cfg);
        let goto = p.at_line(4);
        // Standard PDG: nothing is control dependent on the goto.
        assert!(std.control().dependents(goto).is_empty());
        // Augmented PDG: the skipped statement (line 5) is.
        let aug_deps: Vec<usize> = aug
            .control()
            .dependents(goto)
            .iter()
            .map(|&s| p.line_of(s))
            .collect();
        assert_eq!(aug_deps, vec![5]);
    }

    #[test]
    fn backward_closure_is_conventional_slice() {
        // Figure 1/2: slice on write(positives) = {2, 3, 4, 5, 7, 12}.
        let src = "sum = 0;
                   positives = 0;
                   while (!eof()) {
                     read(x);
                     if (x <= 0)
                       sum = sum + f1(x);
                     else {
                       positives = positives + 1;
                       if (x % 2 == 0)
                         sum = sum + f2(x);
                       else
                         sum = sum + f3(x);
                     }
                   }
                   write(sum);
                   write(positives);";
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        let slice = pdg.backward_closure([p.at_line(12)]);
        let mut lines: Vec<usize> = slice.iter().map(|s| p.line_of(s)).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![2, 3, 4, 5, 7, 12]);
    }

    #[test]
    fn scratch_and_delta_closures_match_the_plain_one() {
        let p = parse("read(c); while (c) { read(x); y = x; } write(y);").unwrap();
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        let plain = pdg.backward_closure([p.at_line(5)]);

        let mut work = vec![p.at_line(1); 8]; // dirty scratch must not leak in
        let mut via_scratch = StmtSet::with_capacity(p.len());
        pdg.backward_closure_into_with_scratch([p.at_line(5)], &mut via_scratch, &mut work);
        assert_eq!(via_scratch, plain);

        // The delta form reports exactly the newly inserted statements,
        // layered on top of a pre-populated slice (line 1 is in the
        // closure; pre-seeding it keeps it out of the delta).
        let mut layered: StmtSet = [p.at_line(1)].into_iter().collect();
        let mut delta = Vec::new();
        pdg.backward_closure_delta([p.at_line(5)], &mut layered, &mut work, &mut delta);
        assert_eq!(layered, plain);
        let mut delta_set: StmtSet = delta.iter().copied().collect();
        delta_set.insert(p.at_line(1));
        assert_eq!(delta_set, plain, "delta == inserted statements");
        assert!(
            !delta.contains(&p.at_line(1)),
            "pre-seeded stmt not re-reported"
        );
    }

    #[test]
    fn control_deps_from_parts_round_trips() {
        let src = "read(c); while (c) { read(x); if (x) break; y = x; } write(y);";
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let cd = ControlDeps::compute(&p, &cfg);
        let fwd: Vec<Vec<StmtId>> = p.stmt_ids().map(|s| cd.deps(s).to_vec()).collect();
        let back = ControlDeps::from_parts(fwd, cd.entry_controlled().to_vec());
        for s in p.stmt_ids() {
            assert_eq!(cd.deps(s), back.deps(s), "deps of {s:?}");
            assert_eq!(cd.dependents(s), back.dependents(s), "dependents of {s:?}");
        }
        assert_eq!(cd.entry_controlled(), back.entry_controlled());
        assert_eq!(cd.num_stmts(), back.num_stmts());
    }

    #[test]
    fn forward_closure_finds_affected() {
        let p = parse("read(x); y = x + 1; z = 5; write(y); write(z);").unwrap();
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        let fwd = pdg.forward_closure([p.at_line(1)]);
        let lines: Vec<usize> = fwd.iter().map(|s| p.line_of(s)).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn pdg_dot_mentions_all_statements() {
        let p = parse("read(c); if (c) { x = 1; } write(x);").unwrap();
        let cfg = Cfg::build(&p);
        let pdg = Pdg::build(&p, &cfg);
        let dot = pdg_dot(&pdg, &p);
        for line in 1..=4 {
            assert!(dot.contains(&format!("label=\"{line}\"")));
        }
        assert!(dot.contains("style=dashed"));
    }
}

#[cfg(test)]
mod frontier_crosscheck {
    use super::*;
    use jumpslice_lang::parse;

    fn agree(src: &str) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(&p);
        let walk = ControlDeps::compute(&p, &cfg);
        let df = ControlDeps::compute_via_frontiers(&p, &cfg);
        for s in p.stmt_ids() {
            assert_eq!(walk.deps(s), df.deps(s), "deps of line {}", p.line_of(s));
            assert_eq!(walk.dependents(s), df.dependents(s));
        }
        assert_eq!(walk.entry_controlled(), df.entry_controlled());
    }

    #[test]
    fn frontier_construction_agrees_on_fixtures() {
        agree("read(c); if (c) { x = 1; } else { x = 2; } write(x);");
        agree("read(c); while (c) { read(c); if (c) break; } write(c);");
        agree(
            "L3: if (eof()) goto L14; read(x); if (x > 0) goto L8; x = 1; goto L3;
             L8: x = 2; goto L3; L14: write(x);",
        );
        agree("switch (c) { case 1: x = 1; case 2: y = 2; break; default: z = 3; } write(y);");
        agree("do { read(x); if (x) continue; x = 1; } while (!eof()); write(x);");
    }
}
